package machine

import (
	"testing"
	"time"

	"repro/internal/sim"
)

// testPlatform returns a small, round-numbered platform for exact timing
// assertions.
func testPlatform() Platform {
	return Platform{
		Name:          "test",
		NodesPerBoard: 2,
		ClockHz:       100e6,
		FlopsPerCycle: 1, // 100 Mflop/s
		MemCopyBW:     100e6,
		SendOverhead:  10 * time.Microsecond,
		RecvOverhead:  10 * time.Microsecond,
		IntraLatency:  1 * time.Microsecond,
		IntraBW:       100e6,
		InterLatency:  10 * time.Microsecond,
		InterBW:       50e6,
		AllToAll:      "direct",
	}
}

func TestPlatformValidate(t *testing.T) {
	good := testPlatform()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := []func(p *Platform){
		func(p *Platform) { p.Name = "" },
		func(p *Platform) { p.NodesPerBoard = 0 },
		func(p *Platform) { p.ClockHz = 0 },
		func(p *Platform) { p.FlopsPerCycle = -1 },
		func(p *Platform) { p.MemCopyBW = 0 },
		func(p *Platform) { p.SendOverhead = -1 },
		func(p *Platform) { p.IntraBW = 0 },
		func(p *Platform) { p.InterBW = 0 },
		func(p *Platform) { p.FabricConcurrency = -1 },
		func(p *Platform) { p.AllToAll = "warp" },
	}
	for i, mutate := range mutations {
		p := testPlatform()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestFlopAndCopyTime(t *testing.T) {
	p := testPlatform()
	// 100 Mflop/s: 1e6 flops = 10ms.
	if got := p.FlopTime(1e6); got != 10*time.Millisecond {
		t.Fatalf("FlopTime = %v", got)
	}
	if p.FlopTime(0) != 0 || p.FlopTime(-5) != 0 {
		t.Fatal("non-positive flops should cost nothing")
	}
	// 100 MB/s: 1 MB = 10ms.
	if got := p.CopyTime(1_000_000); got != 10*time.Millisecond {
		t.Fatalf("CopyTime = %v", got)
	}
	if p.CopyTime(0) != 0 {
		t.Fatal("zero copy should cost nothing")
	}
}

func TestBoardTopology(t *testing.T) {
	p := testPlatform()
	if p.Board(0) != 0 || p.Board(1) != 0 || p.Board(2) != 1 || p.Board(5) != 2 {
		t.Fatal("board mapping wrong")
	}
	if !p.SameBoard(0, 1) || p.SameBoard(1, 2) {
		t.Fatal("same-board test wrong")
	}
}

func TestComputeFlopsAdvancesClock(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testPlatform(), 2)
	var at sim.Time
	k.Spawn("c", func(p *sim.Proc) {
		m.Node(0).ComputeFlops(p, 1e6)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != sim.Time(10*time.Millisecond) {
		t.Fatalf("compute finished at %v, want 10ms", at)
	}
	if m.Node(0).ComputeBusy != 10*time.Millisecond {
		t.Fatalf("accounting = %v", m.Node(0).ComputeBusy)
	}
}

func TestNodeSpeedScalesCompute(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testPlatform(), 2)
	m.SetNodeSpeeds([]float64{2}) // node 0 twice as fast; node 1 default
	var fast, slow sim.Time
	k.Spawn("fast", func(p *sim.Proc) {
		m.Node(0).ComputeFlops(p, 1e6)
		fast = p.Now()
	})
	k.Spawn("slow", func(p *sim.Proc) {
		m.Node(1).ComputeFlops(p, 1e6)
		slow = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fast != sim.Time(5*time.Millisecond) || slow != sim.Time(10*time.Millisecond) {
		t.Fatalf("fast=%v slow=%v", fast, slow)
	}
	if m.Node(0).Speed() != 2 {
		t.Fatal("speed not recorded")
	}
}

func TestSetSpeedInvalidPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	k := sim.NewKernel()
	m := New(k, testPlatform(), 1)
	m.Node(0).SetSpeed(0)
}

func TestTransferIntraVsInterBoard(t *testing.T) {
	// Same payload: inter-board (slower wire + higher latency) must arrive
	// later than intra-board.
	arrival := func(dst int) sim.Time {
		k := sim.NewKernel()
		m := New(k, testPlatform(), 4)
		var at sim.Time
		k.Spawn("s", func(p *sim.Proc) {
			at = m.Node(0).Transfer(p, dst, 100_000)
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return at
	}
	intra, inter := arrival(1), arrival(2)
	if inter <= intra {
		t.Fatalf("inter-board (%v) not slower than intra (%v)", inter, intra)
	}
	// Exact intra arrival: 10us overhead + 1ms serialisation + 1us latency.
	want := sim.Time(10*time.Microsecond + time.Millisecond + time.Microsecond)
	if intra != want {
		t.Fatalf("intra arrival %v, want %v", intra, want)
	}
}

func TestSelfTransferIsMemcpy(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testPlatform(), 2)
	var at sim.Time
	k.Spawn("s", func(p *sim.Proc) {
		at = m.Node(0).Transfer(p, 0, 1_000_000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != sim.Time(10*time.Millisecond) {
		t.Fatalf("self transfer arrival %v, want 10ms memcpy", at)
	}
	if m.Node(0).CopyBusy != 10*time.Millisecond {
		t.Fatal("self transfer not accounted as copy")
	}
}

func TestEgressSerialisesSenders(t *testing.T) {
	// Two threads on one node sending back-to-back must serialise on the
	// egress port.
	k := sim.NewKernel()
	m := New(k, testPlatform(), 2)
	var a1, a2 sim.Time
	k.Spawn("s1", func(p *sim.Proc) { a1 = m.Node(0).Transfer(p, 1, 100_000) })
	k.Spawn("s2", func(p *sim.Proc) { a2 = m.Node(0).Transfer(p, 1, 100_000) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if a2 < a1+sim.Time(time.Millisecond) {
		t.Fatalf("second send (%v) overlapped the first (%v)", a2, a1)
	}
}

func TestPreemptionQuantumInterleaves(t *testing.T) {
	// A long computation must not convoy a short one for its entire
	// duration: with 250us quanta the short task finishes well before the
	// long one.
	k := sim.NewKernel()
	m := New(k, testPlatform(), 1)
	var long, short sim.Time
	k.Spawn("long", func(p *sim.Proc) {
		m.Node(0).ComputeFlops(p, 1e6) // 10ms
		long = p.Now()
	})
	k.Spawn("short", func(p *sim.Proc) {
		m.Node(0).ComputeFlops(p, 1e4) // 100us
		short = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if short >= long {
		t.Fatalf("short task (%v) did not preempt long (%v)", short, long)
	}
	if short > sim.Time(2*time.Millisecond) {
		t.Fatalf("short task took %v under time-sharing", short)
	}
	// Total CPU time conserved.
	if got := m.Node(0).ComputeBusy; got != 10*time.Millisecond+100*time.Microsecond {
		t.Fatalf("compute accounting %v", got)
	}
}

func TestFabricConcurrencyLimit(t *testing.T) {
	pl := testPlatform()
	pl.FabricConcurrency = 1
	k := sim.NewKernel()
	m := New(k, pl, 4)
	var done []sim.Time
	for _, src := range []int{0, 1} {
		src := src
		k.Spawn("s", func(p *sim.Proc) {
			m.Node(src).Transfer(p, src+2, 500_000) // inter-board
			done = append(done, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// 500KB at 50MB/s = 10ms serialisation each; with concurrency 1 the
	// second completes ~10ms after the first.
	if len(done) != 2 || done[1] < done[0]+sim.Time(9*time.Millisecond) {
		t.Fatalf("transfers overlapped on a concurrency-1 fabric: %v", done)
	}
}

func TestInvalidMachinePanics(t *testing.T) {
	for name, f := range map[string]func(){
		"bad platform": func() { New(sim.NewKernel(), Platform{}, 2) },
		"zero nodes":   func() { New(sim.NewKernel(), testPlatform(), 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestResetAccounting(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testPlatform(), 1)
	k.Spawn("c", func(p *sim.Proc) {
		m.Node(0).ComputeFlops(p, 1e5)
		m.Node(0).Memcpy(p, 1000)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	nd := m.Node(0)
	if nd.ComputeBusy == 0 || nd.CopyBusy == 0 {
		t.Fatal("no accounting recorded")
	}
	nd.ResetAccounting()
	if nd.ComputeBusy != 0 || nd.CopyBusy != 0 || nd.CommBusy != 0 || nd.MsgsSent != 0 || nd.BytesSent != 0 {
		t.Fatal("reset incomplete")
	}
	if nd.Utilization(k.Now()) != 0 {
		t.Fatal("utilization after reset")
	}
}

func TestUtilizationBounded(t *testing.T) {
	k := sim.NewKernel()
	m := New(k, testPlatform(), 1)
	k.Spawn("c", func(p *sim.Proc) {
		m.Node(0).ComputeFlops(p, 1e6)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	u := m.Node(0).Utilization(k.Now())
	if u <= 0.99 || u > 1.0 {
		t.Fatalf("utilization = %v, want ~1.0", u)
	}
	if m.Node(0).Utilization(0) != 0 {
		t.Fatal("utilization at t=0")
	}
}
