package isspl

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func randComplex(n int, seed int64) []complex128 {
	rng := rand.New(rand.NewSource(seed))
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	return x
}

func TestFFTMatchesDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8, 16, 64, 256, 1024} {
		n := n
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			x := randComplex(n, int64(n))
			want := DFT(x)
			if err := FFT(x); err != nil {
				t.Fatal(err)
			}
			if d := MaxDiff(x, want); d > 1e-8*float64(n) {
				t.Fatalf("FFT deviates from DFT by %g", d)
			}
		})
	}
}

func TestFFTRejectsNonPow2(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 100} {
		if err := FFT(make([]complex128, n)); err == nil {
			t.Errorf("FFT accepted length %d", n)
		}
	}
}

func TestFFTEmptyAndOne(t *testing.T) {
	if err := FFT(nil); err != nil {
		t.Fatalf("FFT(nil): %v", err)
	}
	x := []complex128{3 + 4i}
	if err := FFT(x); err != nil || x[0] != 3+4i {
		t.Fatalf("FFT length-1 changed data or errored: %v %v", x, err)
	}
}

func TestIFFTInvertsFFT(t *testing.T) {
	for _, n := range []int{2, 16, 128, 1024} {
		x := randComplex(n, 7)
		orig := append([]complex128(nil), x...)
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		if err := IFFT(x); err != nil {
			t.Fatal(err)
		}
		if d := MaxDiff(x, orig); d > 1e-10*float64(n) {
			t.Fatalf("n=%d: roundtrip error %g", n, d)
		}
	}
}

func TestFFTImpulseIsFlat(t *testing.T) {
	x := make([]complex128, 64)
	x[0] = 1
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("bin %d = %v, want 1", i, v)
		}
	}
}

func TestFFTSingleToneBin(t *testing.T) {
	const n, bin = 128, 5
	x := make([]complex128, n)
	for i := range x {
		ang := 2 * math.Pi * bin * float64(i) / n
		x[i] = complex(math.Cos(ang), math.Sin(ang))
	}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := complex128(0)
		if i == bin {
			want = complex(n, 0)
		}
		if cmplx.Abs(v-want) > 1e-9 {
			t.Fatalf("bin %d = %v, want %v", i, v, want)
		}
	}
}

func TestFFTLinearityProperty(t *testing.T) {
	// Property: FFT(a*x + b*y) == a*FFT(x) + b*FFT(y).
	check := func(seed int64, ar, ai, br, bi float64) bool {
		const n = 64
		a := complex(math.Mod(ar, 4), math.Mod(ai, 4))
		b := complex(math.Mod(br, 4), math.Mod(bi, 4))
		x := randComplex(n, seed)
		y := randComplex(n, seed+1)
		lhs := make([]complex128, n)
		for i := range lhs {
			lhs[i] = a*x[i] + b*y[i]
		}
		if FFT(lhs) != nil || FFT(x) != nil || FFT(y) != nil {
			return false
		}
		for i := range lhs {
			if cmplx.Abs(lhs[i]-(a*x[i]+b*y[i])) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParsevalProperty(t *testing.T) {
	// Property: energy is preserved up to the 1/n convention:
	// sum|X|^2 == n * sum|x|^2.
	check := func(seed int64) bool {
		const n = 256
		x := randComplex(n, seed)
		timeEnergy := Energy(x)
		if FFT(x) != nil {
			return false
		}
		freqEnergy := Energy(x)
		return math.Abs(freqEnergy-float64(n)*timeEnergy) < 1e-6*freqEnergy
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRFFTMatchesComplexFFT(t *testing.T) {
	for _, n := range []int{2, 4, 16, 128, 512} {
		rng := rand.New(rand.NewSource(int64(n)))
		xr := make([]float64, n)
		xc := make([]complex128, n)
		for i := range xr {
			xr[i] = 2*rng.Float64() - 1
			xc[i] = complex(xr[i], 0)
		}
		got, err := RFFT(xr)
		if err != nil {
			t.Fatal(err)
		}
		if err := FFT(xc); err != nil {
			t.Fatal(err)
		}
		if len(got) != n/2+1 {
			t.Fatalf("n=%d: RFFT returned %d bins, want %d", n, len(got), n/2+1)
		}
		for k := 0; k <= n/2; k++ {
			if cmplx.Abs(got[k]-xc[k]) > 1e-9*float64(n) {
				t.Fatalf("n=%d bin %d: RFFT=%v FFT=%v", n, k, got[k], xc[k])
			}
		}
	}
}

func TestRFFTRejectsBadLengths(t *testing.T) {
	for _, n := range []int{1, 3, 6} {
		if _, err := RFFT(make([]float64, n)); err == nil {
			t.Errorf("RFFT accepted length %d", n)
		}
	}
	if out, err := RFFT(nil); err != nil || out != nil {
		t.Errorf("RFFT(nil) = %v, %v", out, err)
	}
}

func TestFFTStridedMatchesFFT(t *testing.T) {
	const n, stride, offset = 64, 3, 2
	data := randComplex(offset+n*stride, 21)
	// Extract the strided view, FFT it densely as the reference.
	want := make([]complex128, n)
	for i := 0; i < n; i++ {
		want[i] = data[offset+i*stride]
	}
	if err := FFT(want); err != nil {
		t.Fatal(err)
	}
	if err := FFTStrided(data, n, offset, stride); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if cmplx.Abs(data[offset+i*stride]-want[i]) > 1e-9 {
			t.Fatalf("strided FFT differs at %d", i)
		}
	}
}

func TestFFTStridedColumnsEqualGatherScatter(t *testing.T) {
	// Transforming every column of a matrix via FFTStrided must equal the
	// gather/FFT/scatter approach.
	const rows, cols = 32, 8
	a := randComplex(rows*cols, 22)
	b := append([]complex128(nil), a...)
	tmp := make([]complex128, rows)
	for c := 0; c < cols; c++ {
		for r := 0; r < rows; r++ {
			tmp[r] = a[r*cols+c]
		}
		if err := FFT(tmp); err != nil {
			t.Fatal(err)
		}
		for r := 0; r < rows; r++ {
			a[r*cols+c] = tmp[r]
		}
		if err := FFTStrided(b, rows, c, cols); err != nil {
			t.Fatal(err)
		}
	}
	if d := MaxDiff(a, b); d > 1e-12 {
		t.Fatalf("columns differ by %g", d)
	}
}

func TestIFFTStridedInverts(t *testing.T) {
	const n, stride = 32, 5
	data := randComplex(n*stride, 23)
	orig := append([]complex128(nil), data...)
	if err := FFTStrided(data, n, 0, stride); err != nil {
		t.Fatal(err)
	}
	if err := IFFTStrided(data, n, 0, stride); err != nil {
		t.Fatal(err)
	}
	if d := MaxDiff(data, orig); d > 1e-10 {
		t.Fatalf("roundtrip error %g", d)
	}
}

func TestFFTStridedErrors(t *testing.T) {
	data := make([]complex128, 16)
	if err := FFTStrided(data, 12, 0, 1); err == nil {
		t.Error("non-pow2 accepted")
	}
	if err := FFTStrided(data, 8, 0, 3); err == nil {
		t.Error("overrun accepted")
	}
	if err := FFTStrided(data, 8, -1, 1); err == nil {
		t.Error("negative offset accepted")
	}
	if err := FFTStrided(data, 8, 0, 0); err == nil {
		t.Error("zero stride accepted")
	}
	if err := FFTStrided(data, 0, 0, 1); err != nil {
		t.Errorf("n=0: %v", err)
	}
	if err := FFTStrided(data, 1, 3, 2); err != nil {
		t.Errorf("n=1: %v", err)
	}
}

func TestFFT2DMatchesDFT2D(t *testing.T) {
	for _, n := range []int{2, 4, 8, 16} {
		m := TestMatrix(n, int64(n))
		want := DFT2D(m.Data, n)
		if err := FFT2D(m.Data, n); err != nil {
			t.Fatal(err)
		}
		if d := MaxDiff(m.Data, want); d > 1e-8*float64(n*n) {
			t.Fatalf("n=%d: FFT2D deviates by %g", n, d)
		}
	}
}

func TestIFFT2DInverts(t *testing.T) {
	const n = 32
	m := TestMatrix(n, 3)
	orig := m.Clone()
	if err := FFT2D(m.Data, n); err != nil {
		t.Fatal(err)
	}
	if err := IFFT2D(m.Data, n); err != nil {
		t.Fatal(err)
	}
	if d := m.MaxDiff(orig); d > 1e-9 {
		t.Fatalf("roundtrip error %g", d)
	}
}

func TestFFT2DShapeErrors(t *testing.T) {
	if err := FFT2D(make([]complex128, 10), 4); err == nil {
		t.Fatal("FFT2D accepted wrong length")
	}
	if err := IFFT2D(make([]complex128, 10), 4); err == nil {
		t.Fatal("IFFT2D accepted wrong length")
	}
	if err := FFTRows(make([]complex128, 10), 2, 4); err == nil {
		t.Fatal("FFTRows accepted wrong length")
	}
}

func TestResetTwiddleCache(t *testing.T) {
	_ = twiddles(64)
	if len(twiddleCache) == 0 {
		t.Fatal("cache empty after use")
	}
	ResetTwiddleCache()
	if len(twiddleCache) != 0 {
		t.Fatal("cache not cleared")
	}
	// Still correct after reset.
	x := randComplex(64, 1)
	want := DFT(x)
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	if MaxDiff(x, want) > 1e-8 {
		t.Fatal("FFT wrong after cache reset")
	}
}

func TestIsPow2(t *testing.T) {
	for n, want := range map[int]bool{0: false, 1: true, 2: true, 3: false, 4: true, 1024: true, 1023: false, -4: false} {
		if IsPow2(n) != want {
			t.Errorf("IsPow2(%d) = %v", n, !want)
		}
	}
}
