package isspl

import (
	"fmt"
	"math/rand"
)

// Matrix is a dense row-major complex matrix. The benchmark applications
// operate on square matrices (256/512/1024 per the paper), but the type is
// general.
type Matrix struct {
	Rows, Cols int
	Data       []complex128
}

// NewMatrix allocates a zeroed rows x cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("isspl: NewMatrix(%d, %d)", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]complex128, rows*cols)}
}

// At returns element (r, c).
func (m *Matrix) At(r, c int) complex128 { return m.Data[r*m.Cols+c] }

// Set assigns element (r, c).
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.Cols+c] = v }

// Row returns row r as a slice aliasing the matrix storage.
func (m *Matrix) Row(r int) []complex128 { return m.Data[r*m.Cols : (r+1)*m.Cols] }

// RowBlock returns rows [r0, r0+n) as a slice aliasing the matrix storage.
func (m *Matrix) RowBlock(r0, n int) []complex128 {
	return m.Data[r0*m.Cols : (r0+n)*m.Cols]
}

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Transposed returns a newly allocated transpose.
func (m *Matrix) Transposed() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	Transpose(out.Data, m.Data, m.Rows, m.Cols)
	return out
}

// MaxDiff returns the largest elementwise difference against other, which
// must have the same shape.
func (m *Matrix) MaxDiff(other *Matrix) float64 {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic(fmt.Sprintf("isspl: MaxDiff shape %dx%d vs %dx%d", m.Rows, m.Cols, other.Rows, other.Cols))
	}
	return MaxDiff(m.Data, other.Data)
}

// TestMatrix deterministically fills an n x n matrix with pseudo-random
// complex samples in [-1, 1) from the given seed. The paper's input data set
// was supplied by CSPI; this synthetic stand-in exercises the same code
// paths with reproducible content.
func TestMatrix(n int, seed int64) *Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := NewMatrix(n, n)
	for i := range m.Data {
		m.Data[i] = complex(2*rng.Float64()-1, 2*rng.Float64()-1)
	}
	return m
}
