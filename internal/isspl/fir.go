package isspl

import "fmt"

// FIR applies a finite-impulse-response filter with the given real taps to a
// complex input, producing len(x) outputs with zero-padded history:
// y[n] = sum_k taps[k] * x[n-k].
func FIR(dst, x []complex128, taps []float64) {
	if len(dst) != len(x) {
		panic(fmt.Sprintf("isspl: FIR length mismatch dst=%d x=%d", len(dst), len(x)))
	}
	for n := range x {
		var acc complex128
		for k, t := range taps {
			if n-k < 0 {
				break
			}
			acc += complex(t, 0) * x[n-k]
		}
		dst[n] = acc
	}
}

// FIRDecimate filters and keeps every factor-th output sample, the classic
// front-end decimation stage of a radar/sonar chain. It returns the number
// of outputs written (ceil(len(x)/factor)).
func FIRDecimate(dst, x []complex128, taps []float64, factor int) int {
	if factor < 1 {
		panic(fmt.Sprintf("isspl: FIRDecimate factor %d < 1", factor))
	}
	out := 0
	for n := 0; n < len(x); n += factor {
		var acc complex128
		for k, t := range taps {
			if n-k < 0 {
				break
			}
			acc += complex(t, 0) * x[n-k]
		}
		dst[out] = acc
		out++
	}
	return out
}

// Convolve computes the full linear convolution of a and b (length
// len(a)+len(b)-1) by direct evaluation; it is the reference for FIR and is
// also used by tests.
func Convolve(a []complex128, b []float64) []complex128 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	out := make([]complex128, len(a)+len(b)-1)
	for i, av := range a {
		for j, bv := range b {
			out[i+j] += av * complex(bv, 0)
		}
	}
	return out
}
