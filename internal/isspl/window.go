package isspl

import (
	"fmt"
	"math"
)

// WindowKind selects a tapering window.
type WindowKind string

const (
	WindowRect     WindowKind = "rect"
	WindowHann     WindowKind = "hann"
	WindowHamming  WindowKind = "hamming"
	WindowBlackman WindowKind = "blackman"
	WindowKaiser   WindowKind = "kaiser" // beta fixed at 8.6 (approx. Blackman sidelobes)
)

// Window returns an n-point window of the requested kind (periodic form,
// suitable for spectral processing pipelines).
func Window(kind WindowKind, n int) ([]float64, error) {
	if n < 1 {
		return nil, fmt.Errorf("isspl: window length %d < 1", n)
	}
	w := make([]float64, n)
	switch kind {
	case WindowRect:
		for i := range w {
			w[i] = 1
		}
	case WindowHann:
		for i := range w {
			w[i] = 0.5 - 0.5*math.Cos(2*math.Pi*float64(i)/float64(n))
		}
	case WindowHamming:
		for i := range w {
			w[i] = 0.54 - 0.46*math.Cos(2*math.Pi*float64(i)/float64(n))
		}
	case WindowBlackman:
		for i := range w {
			t := 2 * math.Pi * float64(i) / float64(n)
			w[i] = 0.42 - 0.5*math.Cos(t) + 0.08*math.Cos(2*t)
		}
	case WindowKaiser:
		const beta = 8.6
		denom := besselI0(beta)
		for i := range w {
			r := 2*float64(i)/float64(n-1) - 1 // -1 .. 1
			if n == 1 {
				r = 0
			}
			w[i] = besselI0(beta*math.Sqrt(1-r*r)) / denom
		}
	default:
		return nil, fmt.Errorf("isspl: unknown window kind %q", kind)
	}
	return w, nil
}

// besselI0 evaluates the zeroth-order modified Bessel function of the first
// kind by its power series (converges quickly for the argument range used by
// Kaiser windows).
func besselI0(x float64) float64 {
	sum, term := 1.0, 1.0
	half := x / 2
	for k := 1; k < 64; k++ {
		term *= (half / float64(k)) * (half / float64(k))
		sum += term
		if term < 1e-16*sum {
			break
		}
	}
	return sum
}
