package isspl

import "math"

// Operation-count models for the library kernels. The simulated machine
// multiplies these by its sustained per-flop time to price computation in
// virtual time; the constants are the standard textbook counts, so relative
// costs across kernels and sizes are faithful even though no host cycles are
// measured.

// FFTFlops returns the floating-point operation count of a length-n complex
// FFT (the conventional 5 n log2 n for a radix-2 implementation).
func FFTFlops(n int) float64 {
	if n < 2 {
		return 0
	}
	return 5 * float64(n) * math.Log2(float64(n))
}

// FFTRowsFlops prices rows independent FFTs of length cols.
func FFTRowsFlops(rows, cols int) float64 { return float64(rows) * FFTFlops(cols) }

// FFT2DFlops prices a full n x n 2D FFT (2n row FFTs plus two transposes,
// the transposes priced separately as copies).
func FFT2DFlops(n int) float64 { return 2 * float64(n) * FFTFlops(n) }

// TransposeBytes returns the bytes moved by transposing an r x c complex
// matrix at the given element wire size (each element read and written).
func TransposeBytes(r, c, elemBytes int) int { return 2 * r * c * elemBytes }

// VectorOpFlops prices an elementwise complex multiply-class op over n
// elements (6 flops per complex multiply).
func VectorOpFlops(n int) float64 { return 6 * float64(n) }

// FIRFlops prices an n-sample FIR with t taps (one complex multiply-add —
// 8 flops with real taps counted as 2 madds — per tap per sample; we use the
// conventional 2*t real MACs on complex data = 4t flops).
func FIRFlops(n, taps int) float64 { return 4 * float64(n) * float64(taps) }

// WindowFlops prices applying an n-point real window to complex data.
func WindowFlops(n int) float64 { return 2 * float64(n) }
