package isspl

import "fmt"

// The corner turn — redistributing a matrix so that processing can switch
// from row-oriented to column-oriented access — is one of the paper's two
// benchmark applications. On a single node it is a matrix transpose; the
// distributed version (internal/handcoded, internal/sagert) combines local
// block transposes with an all-to-all exchange of tiles.

// transposeBlock is the cache-blocking tile edge used by the blocked
// transposes.
const transposeBlock = 32

// TransposeSquare transposes an n x n row-major matrix in place using a
// cache-blocked sweep of the upper triangle.
func TransposeSquare(data []complex128, n int) {
	if len(data) != n*n {
		panic(fmt.Sprintf("isspl: TransposeSquare length %d != %d^2", len(data), n))
	}
	for bi := 0; bi < n; bi += transposeBlock {
		for bj := bi; bj < n; bj += transposeBlock {
			iMax := min(bi+transposeBlock, n)
			jMax := min(bj+transposeBlock, n)
			for i := bi; i < iMax; i++ {
				jStart := bj
				if bi == bj {
					jStart = i + 1
				}
				for j := jStart; j < jMax; j++ {
					data[i*n+j], data[j*n+i] = data[j*n+i], data[i*n+j]
				}
			}
		}
	}
}

// Transpose writes the transpose of the rows x cols row-major matrix src
// into dst (which must have the same length and is interpreted as
// cols x rows). src and dst must not alias.
func Transpose(dst, src []complex128, rows, cols int) {
	if len(src) != rows*cols || len(dst) != rows*cols {
		panic(fmt.Sprintf("isspl: Transpose %dx%d with src %d dst %d", rows, cols, len(src), len(dst)))
	}
	for bi := 0; bi < rows; bi += transposeBlock {
		for bj := 0; bj < cols; bj += transposeBlock {
			iMax := min(bi+transposeBlock, rows)
			jMax := min(bj+transposeBlock, cols)
			for i := bi; i < iMax; i++ {
				for j := bj; j < jMax; j++ {
					dst[j*rows+i] = src[i*cols+j]
				}
			}
		}
	}
}

// GatherTile copies the tile [r0, r0+h) x [c0, c0+w) of a rows x cols
// row-major matrix into a dense h*w buffer (row-major). It is the packing
// step of the distributed corner turn.
func GatherTile(dst, src []complex128, rows, cols, r0, c0, h, w int) {
	if r0 < 0 || c0 < 0 || r0+h > rows || c0+w > cols {
		panic(fmt.Sprintf("isspl: GatherTile [%d:%d)x[%d:%d) outside %dx%d", r0, r0+h, c0, c0+w, rows, cols))
	}
	if len(dst) < h*w {
		panic("isspl: GatherTile destination too small")
	}
	for i := 0; i < h; i++ {
		copy(dst[i*w:(i+1)*w], src[(r0+i)*cols+c0:(r0+i)*cols+c0+w])
	}
}

// ScatterTileTransposed writes a dense h x w tile (in the sender's row-major
// orientation) into a row-major destination with dstCols columns,
// transposing it: tile element (i, j) lands at dst row row0+j, column
// col0+i. It is the unpacking step of the distributed corner turn, where the
// receiver stores incoming row-tiles as column data.
func ScatterTileTransposed(dst, tile []complex128, dstCols, row0, col0, h, w int) {
	dstRows := len(dst) / dstCols
	if row0 < 0 || col0 < 0 || row0+w > dstRows || col0+h > dstCols {
		panic(fmt.Sprintf("isspl: ScatterTileTransposed %dx%d tile at (%d,%d) outside %dx%d", h, w, row0, col0, dstRows, dstCols))
	}
	if len(tile) < h*w {
		panic("isspl: ScatterTileTransposed tile too small")
	}
	// Cache-blocked like Transpose: without blocking, each inner step writes
	// a full dst row apart, so large tiles evict every line before reuse.
	for bi := 0; bi < h; bi += transposeBlock {
		for bj := 0; bj < w; bj += transposeBlock {
			iMax := min(bi+transposeBlock, h)
			jMax := min(bj+transposeBlock, w)
			for i := bi; i < iMax; i++ {
				for j := bj; j < jMax; j++ {
					dst[(row0+j)*dstCols+(col0+i)] = tile[i*w+j]
				}
			}
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
