package isspl

import (
	"math"
	"math/rand"
	"testing"
)

// fixedInput builds the same deterministic input for a size every time, so
// outputs can be compared bit for bit across cache states.
func fixedInput(n int) []complex128 {
	x := make([]complex128, n)
	for k := range x {
		x[k] = complex(math.Sin(float64(k)*0.7), math.Cos(float64(k)*1.3))
	}
	return x
}

// TestTwiddleCacheBoundedSoak drives a mixed-size FFT soak through a
// shrunken cache bound and asserts the long-lived-process contract: the
// cache never exceeds its bound, eviction actually happens, and every
// post-eviction transform is bitwise identical to the cold-cache transform
// of the same input (a recomputed twiddle table is the same pure function of
// its size).
func TestTwiddleCacheBoundedSoak(t *testing.T) {
	ResetTwiddleCache()
	oldLimit := twiddleCacheMaxElems
	twiddleCacheMaxElems = 4096
	defer func() {
		twiddleCacheMaxElems = oldLimit
		ResetTwiddleCache()
	}()

	var sizes []int
	for n := 2; n <= 8192; n <<= 1 {
		sizes = append(sizes, n)
	}
	// Cold-cache reference output per size.
	ref := map[int][]complex128{}
	for _, n := range sizes {
		x := fixedInput(n)
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		ref[n] = x
	}

	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 2000; i++ {
		n := sizes[rng.Intn(len(sizes))]
		x := fixedInput(n)
		if err := FFT(x); err != nil {
			t.Fatal(err)
		}
		for k := range x {
			if x[k] != ref[n][k] {
				t.Fatalf("iteration %d: FFT(%d) diverged bitwise at bin %d after eviction churn", i, n, k)
			}
		}
		if s := TwiddleCacheStats(); s.Elems > twiddleCacheMaxElems {
			t.Fatalf("iteration %d: cache holds %d elems, bound is %d", i, s.Elems, twiddleCacheMaxElems)
		}
	}

	s := TwiddleCacheStats()
	if s.Evictions == 0 {
		t.Fatal("soak produced no evictions; the bound was never exercised")
	}
	if s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("implausible stats: %+v", s)
	}
	if s.Entries > len(sizes) {
		t.Fatalf("cache has %d entries for %d distinct sizes", s.Entries, len(sizes))
	}
}

// TestTwiddleCacheOversizedBypass: a table larger than the whole bound is
// served but never cached, and does not flush resident tables.
func TestTwiddleCacheOversizedBypass(t *testing.T) {
	ResetTwiddleCache()
	oldLimit := twiddleCacheMaxElems
	twiddleCacheMaxElems = 64
	defer func() {
		twiddleCacheMaxElems = oldLimit
		ResetTwiddleCache()
	}()

	_ = twiddles(64) // 32 elems, cached
	before := TwiddleCacheStats()
	if before.Entries != 1 || before.Elems != 32 {
		t.Fatalf("setup: %+v", before)
	}
	w := twiddles(1024) // 512 elems > bound: bypass
	if len(w) != 512 {
		t.Fatalf("oversized table has %d elems", len(w))
	}
	after := TwiddleCacheStats()
	if after.Entries != 1 || after.Elems != 32 {
		t.Fatalf("oversized request disturbed the cache: %+v", after)
	}
	if after.Evictions != 0 {
		t.Fatalf("oversized request evicted residents: %+v", after)
	}
}
