package isspl

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestTransposeSquareInvolution(t *testing.T) {
	for _, n := range []int{1, 2, 3, 31, 32, 33, 100, 256} {
		m := TestMatrix(n, int64(n))
		orig := m.Clone()
		TransposeSquare(m.Data, n)
		TransposeSquare(m.Data, n)
		if d := m.MaxDiff(orig); d != 0 {
			t.Fatalf("n=%d: double transpose differs by %g", n, d)
		}
	}
}

func TestTransposeSquareCorrect(t *testing.T) {
	const n = 70 // crosses block boundaries
	m := TestMatrix(n, 9)
	orig := m.Clone()
	TransposeSquare(m.Data, n)
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if m.At(r, c) != orig.At(c, r) {
				t.Fatalf("(%d,%d) = %v, want %v", r, c, m.At(r, c), orig.At(c, r))
			}
		}
	}
}

func TestTransposeRectangular(t *testing.T) {
	for _, shape := range [][2]int{{1, 1}, {2, 3}, {3, 2}, {33, 65}, {64, 32}, {5, 100}} {
		rows, cols := shape[0], shape[1]
		src := randComplex(rows*cols, int64(rows*100+cols))
		dst := make([]complex128, rows*cols)
		Transpose(dst, src, rows, cols)
		for r := 0; r < rows; r++ {
			for c := 0; c < cols; c++ {
				if dst[c*rows+r] != src[r*cols+c] {
					t.Fatalf("%dx%d: (%d,%d) mismatch", rows, cols, r, c)
				}
			}
		}
	}
}

func TestTransposePanicsOnBadShape(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Transpose(make([]complex128, 5), make([]complex128, 6), 2, 3)
}

func TestGatherScatterTileRoundTrip(t *testing.T) {
	// Property: corner-turning a matrix tile-by-tile via
	// GatherTile + ScatterTileTransposed equals a full transpose.
	check := func(seedRaw uint32, pRaw uint8) bool {
		n := 16
		p := 1 << (pRaw % 3) // 1, 2, or 4 tiles per side
		tile := n / p
		src := randComplex(n*n, int64(seedRaw))
		dst := make([]complex128, n*n)
		buf := make([]complex128, tile*tile)
		for bi := 0; bi < p; bi++ {
			for bj := 0; bj < p; bj++ {
				GatherTile(buf, src, n, n, bi*tile, bj*tile, tile, tile)
				ScatterTileTransposed(dst, buf, n, bj*tile, bi*tile, tile, tile)
			}
		}
		want := make([]complex128, n*n)
		Transpose(want, src, n, n)
		return MaxDiff(dst, want) == 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestGatherTileContents(t *testing.T) {
	const rows, cols = 8, 10
	src := make([]complex128, rows*cols)
	for i := range src {
		src[i] = complex(float64(i), 0)
	}
	buf := make([]complex128, 6)
	GatherTile(buf, src, rows, cols, 2, 3, 2, 3)
	want := []complex128{23, 24, 25, 33, 34, 35}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("buf = %v, want %v", buf, want)
		}
	}
}

func TestGatherTileBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	GatherTile(make([]complex128, 100), make([]complex128, 16), 4, 4, 2, 2, 3, 3)
}

func TestScatterTileTransposedBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	ScatterTileTransposed(make([]complex128, 16), make([]complex128, 16), 4, 3, 0, 2, 2)
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix(3, 4)
	m.Set(1, 2, 5+6i)
	if m.At(1, 2) != 5+6i {
		t.Fatal("Set/At broken")
	}
	if len(m.Row(1)) != 4 || m.Row(1)[2] != 5+6i {
		t.Fatal("Row broken")
	}
	if len(m.RowBlock(1, 2)) != 8 {
		t.Fatal("RowBlock broken")
	}
	tr := m.Transposed()
	if tr.Rows != 4 || tr.Cols != 3 || tr.At(2, 1) != 5+6i {
		t.Fatal("Transposed broken")
	}
	cl := m.Clone()
	cl.Set(0, 0, 1)
	if m.At(0, 0) == 1 {
		t.Fatal("Clone aliases")
	}
	if m.MaxDiff(m) != 0 {
		t.Fatal("MaxDiff self not zero")
	}
}

func TestTestMatrixDeterministic(t *testing.T) {
	a := TestMatrix(16, 42)
	b := TestMatrix(16, 42)
	if a.MaxDiff(b) != 0 {
		t.Fatal("TestMatrix not deterministic")
	}
	c := TestMatrix(16, 43)
	if a.MaxDiff(c) == 0 {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestCostModelsMonotone(t *testing.T) {
	if FFTFlops(1024) <= FFTFlops(512) {
		t.Fatal("FFT flops not monotone")
	}
	if FFTFlops(1) != 0 {
		t.Fatal("FFT flops of trivial size should be 0")
	}
	if FFT2DFlops(256) != 2*256*FFTFlops(256) {
		t.Fatal("FFT2D flops formula")
	}
	if TransposeBytes(4, 8, 8) != 512 {
		t.Fatalf("TransposeBytes = %d", TransposeBytes(4, 8, 8))
	}
	if FIRFlops(100, 16) != 4*100*16 {
		t.Fatal("FIRFlops formula")
	}
	for _, f := range []float64{FFTRowsFlops(4, 256), VectorOpFlops(10), WindowFlops(10)} {
		if f <= 0 {
			t.Fatal("zero cost for nontrivial op")
		}
	}
}

func ExampleTransposeSquare() {
	data := []complex128{1, 2, 3, 4}
	TransposeSquare(data, 2)
	fmt.Println(data)
	// Output: [(1+0i) (3+0i) (2+0i) (4+0i)]
}

// naiveTranspose is the unblocked reference the blocked kernels are
// benchmarked against (and verified equivalent to).
func naiveTranspose(dst, src []complex128, rows, cols int) {
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			dst[j*rows+i] = src[i*cols+j]
		}
	}
}

// fillSeq deterministically fills a rows x cols buffer for the
// blocked-vs-naive comparisons.
func fillSeq(rows, cols int) []complex128 {
	data := make([]complex128, rows*cols)
	for i := range data {
		data[i] = complex(float64(i%97), float64(i%89))
	}
	return data
}

func TestTransposeMatchesNaive(t *testing.T) {
	for _, sz := range [][2]int{{64, 64}, {96, 128}, {33, 65}} {
		rows, cols := sz[0], sz[1]
		src := fillSeq(rows, cols)
		got := make([]complex128, rows*cols)
		want := make([]complex128, rows*cols)
		Transpose(got, src, rows, cols)
		naiveTranspose(want, src, rows, cols)
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("%dx%d: blocked transpose diverges from naive at %d", rows, cols, i)
			}
		}
	}
}

// BenchmarkTranspose compares the cache-blocked out-of-place transpose with
// the naive sweep at a corner-turn-sized matrix; the blocked version must
// win on large matrices (that is the point of the tiling).
func BenchmarkTranspose(b *testing.B) {
	const n = 1024
	src := fillSeq(n, n)
	dst := make([]complex128, n*n)
	b.Run("blocked", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Transpose(dst, src, n, n)
		}
	})
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			naiveTranspose(dst, src, n, n)
		}
	})
}

func BenchmarkTransposeSquareInPlace(b *testing.B) {
	const n = 1024
	data := fillSeq(n, n)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TransposeSquare(data, n)
	}
}

// BenchmarkScatterTileTransposed exercises the distributed corner turn's
// unpack step at a realistic large-tile size (one peer's stripe of a 1024
// corner turn on 2 nodes), where the blocking matters most.
func BenchmarkScatterTileTransposed(b *testing.B) {
	const h, w, dstCols = 512, 512, 1024
	tile := fillSeq(h, w)
	dst := make([]complex128, dstCols*dstCols)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		ScatterTileTransposed(dst, tile, dstCols, 0, 0, h, w)
	}
}
