// Package isspl is the reproduction's signal-processing function library,
// standing in for the CSPI ISSPL library the paper's benchmarks link against
// (§3.2: "CSPI also provided all software including ... the CSPI ISSPL
// functional libraries").
//
// It provides the kernels the two benchmark applications are built from —
// complex 1D/2D FFTs and the corner turn (distributed matrix transpose) —
// plus the usual supporting vector, window and FIR routines found in such
// libraries. Every routine has an accompanying operation-count function
// (cost.go) so the simulated machine can price it in virtual time, and each
// is verified against a naive reference implementation in the tests.
package isspl

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
)

// IsPow2 reports whether n is a positive power of two.
func IsPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

// twiddle tables are cached per size. The parallel experiment engine runs
// independent simulations — each calling into this library — concurrently,
// so the cache is guarded by a lock; the tables themselves are immutable
// once published. (The cache is an implementation detail; clear with
// ResetTwiddleCache in memory-sensitive tests.)
//
// The cache is bounded: a long-lived process (the sage-serve daemon) sees an
// unbounded variety of transform sizes over its lifetime, and an uncapped
// per-size map is a slow memory leak. When the cached tables exceed
// twiddleCacheMaxElems complex values, the least-recently-used sizes are
// evicted. Eviction is invisible to callers: a table is a pure function of
// its size, so a recomputed table is bitwise identical to the evicted one.
var (
	twiddleMu    sync.RWMutex
	twiddleCache = map[int]*twiddleEntry{}
	twiddleElems int    // total complex128 values across cached tables
	twiddleTick  uint64 // logical clock for LRU ordering
	twiddleStats CacheStats
)

// twiddleCacheMaxElems bounds the cache to 1<<20 complex128 values (16 MiB).
// Large enough to hold every size the benchmark applications use
// simultaneously; small enough that a daemon serving adversarial size mixes
// stays flat. A variable so the bounded-soak test can shrink it.
var twiddleCacheMaxElems = 1 << 20

type twiddleEntry struct {
	w    []complex128
	used uint64 // twiddleTick at last access
}

// CacheStats describes the twiddle cache; served by the daemon's /v1/stats.
type CacheStats struct {
	Entries   int    `json:"entries"`
	Elems     int    `json:"elems"` // complex128 values held (16 bytes each)
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
}

// twiddles returns the first n/2 forward twiddle factors e^{-2πik/n}.
func twiddles(n int) []complex128 {
	twiddleMu.RLock()
	e, ok := twiddleCache[n]
	twiddleMu.RUnlock()
	if ok {
		// The LRU stamp is refreshed under the write lock; the table slice
		// itself is immutable and safe to return before that.
		twiddleMu.Lock()
		twiddleTick++
		e.used = twiddleTick
		twiddleStats.Hits++
		twiddleMu.Unlock()
		return e.w
	}
	w := make([]complex128, n/2)
	for k := range w {
		ang := -2 * math.Pi * float64(k) / float64(n)
		w[k] = complex(math.Cos(ang), math.Sin(ang))
	}
	twiddleMu.Lock()
	defer twiddleMu.Unlock()
	twiddleStats.Misses++
	if e, ok := twiddleCache[n]; ok {
		// Another goroutine published the same size while we computed; both
		// tables are bitwise identical, keep the published one.
		twiddleTick++
		e.used = twiddleTick
		return e.w
	}
	// Oversized tables bypass the cache entirely rather than flushing it.
	if len(w) > twiddleCacheMaxElems {
		return w
	}
	for twiddleElems+len(w) > twiddleCacheMaxElems {
		evictOldestTwiddleLocked()
	}
	twiddleTick++
	twiddleCache[n] = &twiddleEntry{w: w, used: twiddleTick}
	twiddleElems += len(w)
	return w
}

// evictOldestTwiddleLocked removes the least-recently-used table. Caller
// holds twiddleMu.
func evictOldestTwiddleLocked() {
	oldest, found := 0, false
	for n, e := range twiddleCache {
		if !found || e.used < twiddleCache[oldest].used {
			oldest, found = n, true
		}
	}
	if !found {
		return
	}
	twiddleElems -= len(twiddleCache[oldest].w)
	delete(twiddleCache, oldest)
	twiddleStats.Evictions++
}

// ResetTwiddleCache drops all cached twiddle tables and zeroes the stats.
func ResetTwiddleCache() {
	twiddleMu.Lock()
	twiddleCache = map[int]*twiddleEntry{}
	twiddleElems = 0
	twiddleTick = 0
	twiddleStats = CacheStats{}
	twiddleMu.Unlock()
}

// TwiddleCacheStats reports the cache's current occupancy and hit counters.
func TwiddleCacheStats() CacheStats {
	twiddleMu.RLock()
	defer twiddleMu.RUnlock()
	s := twiddleStats
	s.Entries = len(twiddleCache)
	s.Elems = twiddleElems
	return s
}

// FFT computes the in-place forward discrete Fourier transform of x using an
// iterative radix-2 decimation-in-time algorithm. len(x) must be a power of
// two.
func FFT(x []complex128) error {
	return fftInternal(x, false)
}

// IFFT computes the in-place inverse DFT of x, including the 1/n scaling.
// len(x) must be a power of two.
func IFFT(x []complex128) error {
	if err := fftInternal(x, true); err != nil {
		return err
	}
	scale := complex(1/float64(len(x)), 0)
	for i := range x {
		x[i] *= scale
	}
	return nil
}

func fftInternal(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 {
		return nil
	}
	if !IsPow2(n) {
		return fmt.Errorf("isspl: FFT length %d is not a power of two", n)
	}
	if n == 1 {
		return nil
	}
	bitReverse(x)
	w := twiddles(n)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				tw := w[k*step]
				if inverse {
					tw = complex(real(tw), -imag(tw))
				}
				a := x[start+k]
				b := x[start+k+half] * tw
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// bitReverse permutes x into bit-reversed index order.
func bitReverse(x []complex128) {
	n := len(x)
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := range x {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
}

// FFTStrided computes the in-place forward DFT of the n logical elements
// data[offset], data[offset+stride], ..., data[offset+(n-1)*stride]. It lets
// column transforms run directly on row-major storage without gather/scatter
// buffers. n must be a power of two and stride >= 1.
func FFTStrided(data []complex128, n, offset, stride int) error {
	return fftStridedInternal(data, n, offset, stride, false)
}

// IFFTStrided is the inverse of FFTStrided, including the 1/n scaling.
func IFFTStrided(data []complex128, n, offset, stride int) error {
	if err := fftStridedInternal(data, n, offset, stride, true); err != nil {
		return err
	}
	scale := complex(1/float64(n), 0)
	for i := 0; i < n; i++ {
		data[offset+i*stride] *= scale
	}
	return nil
}

func fftStridedInternal(data []complex128, n, offset, stride int, inverse bool) error {
	if n == 0 {
		return nil
	}
	if !IsPow2(n) {
		return fmt.Errorf("isspl: strided FFT length %d is not a power of two", n)
	}
	if stride < 1 || offset < 0 {
		return fmt.Errorf("isspl: strided FFT offset %d stride %d", offset, stride)
	}
	if last := offset + (n-1)*stride; last >= len(data) {
		return fmt.Errorf("isspl: strided FFT overruns buffer: last index %d, length %d", last, len(data))
	}
	if n == 1 {
		return nil
	}
	idx := func(i int) int { return offset + i*stride }
	// Bit-reversal permutation over logical indices.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			data[idx(i)], data[idx(j)] = data[idx(j)], data[idx(i)]
		}
	}
	w := twiddles(n)
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := n / size
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				tw := w[k*step]
				if inverse {
					tw = complex(real(tw), -imag(tw))
				}
				a := data[idx(start+k)]
				b := data[idx(start+k+half)] * tw
				data[idx(start+k)] = a + b
				data[idx(start+k+half)] = a - b
			}
		}
	}
	return nil
}

// DFT computes the forward transform by direct O(n^2) evaluation. It exists
// as the verification reference for FFT and for non-power-of-two lengths.
func DFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		var sum complex128
		for t := 0; t < n; t++ {
			ang := -2 * math.Pi * float64(k) * float64(t) / float64(n)
			sum += x[t] * complex(math.Cos(ang), math.Sin(ang))
		}
		out[k] = sum
	}
	return out
}

// RFFT computes the DFT of a real sequence of even power-of-two length n
// using one complex FFT of length n/2 (the standard packing trick). The
// result has n/2+1 unique bins (DC .. Nyquist).
func RFFT(x []float64) ([]complex128, error) {
	n := len(x)
	if n == 0 {
		return nil, nil
	}
	if !IsPow2(n) || n < 2 {
		return nil, fmt.Errorf("isspl: RFFT length %d is not a power of two >= 2", n)
	}
	h := n / 2
	// Pack even samples into real parts, odd into imaginary parts.
	z := make([]complex128, h)
	for i := 0; i < h; i++ {
		z[i] = complex(x[2*i], x[2*i+1])
	}
	if err := FFT(z); err != nil {
		return nil, err
	}
	out := make([]complex128, h+1)
	for k := 0; k <= h; k++ {
		var zk, zmk complex128
		if k == h {
			zk, zmk = z[0], z[0]
		} else if k == 0 {
			zk, zmk = z[0], z[0]
		} else {
			zk, zmk = z[k], z[h-k]
		}
		even := (zk + conj(zmk)) / 2
		odd := (zk - conj(zmk)) / (2i)
		ang := -2 * math.Pi * float64(k) / float64(n)
		out[k] = even + complex(math.Cos(ang), math.Sin(ang))*odd
	}
	return out, nil
}

func conj(c complex128) complex128 { return complex(real(c), -imag(c)) }

// FFTRows transforms every row of an r x c row-major matrix in place.
// c must be a power of two.
func FFTRows(data []complex128, rows, cols int) error {
	if len(data) != rows*cols {
		return fmt.Errorf("isspl: FFTRows data length %d != %d x %d", len(data), rows, cols)
	}
	for r := 0; r < rows; r++ {
		if err := FFT(data[r*cols : (r+1)*cols]); err != nil {
			return err
		}
	}
	return nil
}

// FFT2D computes the forward 2D transform of an n x n row-major matrix in
// place: FFT of every row, transpose, FFT of every (former) column, and
// transpose back so the output is in natural orientation.
func FFT2D(data []complex128, n int) error {
	if len(data) != n*n {
		return fmt.Errorf("isspl: FFT2D data length %d != %d^2", len(data), n)
	}
	if err := FFTRows(data, n, n); err != nil {
		return err
	}
	TransposeSquare(data, n)
	if err := FFTRows(data, n, n); err != nil {
		return err
	}
	TransposeSquare(data, n)
	return nil
}

// IFFT2D inverts FFT2D.
func IFFT2D(data []complex128, n int) error {
	if len(data) != n*n {
		return fmt.Errorf("isspl: IFFT2D data length %d != %d^2", len(data), n)
	}
	for r := 0; r < n; r++ {
		if err := IFFT(data[r*n : (r+1)*n]); err != nil {
			return err
		}
	}
	TransposeSquare(data, n)
	for r := 0; r < n; r++ {
		if err := IFFT(data[r*n : (r+1)*n]); err != nil {
			return err
		}
	}
	TransposeSquare(data, n)
	return nil
}

// DFT2D is the O(n^4)-ish reference for FFT2D built from row/column DFTs.
func DFT2D(data []complex128, n int) []complex128 {
	out := make([]complex128, n*n)
	// Rows.
	for r := 0; r < n; r++ {
		copy(out[r*n:(r+1)*n], DFT(data[r*n:(r+1)*n]))
	}
	// Columns.
	col := make([]complex128, n)
	for c := 0; c < n; c++ {
		for r := 0; r < n; r++ {
			col[r] = out[r*n+c]
		}
		fc := DFT(col)
		for r := 0; r < n; r++ {
			out[r*n+c] = fc[r]
		}
	}
	return out
}
