package isspl

import (
	"math"
	"math/cmplx"
	"testing"
	"testing/quick"
)

func TestVectorOps(t *testing.T) {
	a := []complex128{1 + 1i, 2, 3i}
	b := []complex128{2, 1 - 1i, 1 + 1i}
	dst := make([]complex128, 3)

	VAdd(dst, a, b)
	if dst[0] != 3+1i || dst[1] != 3-1i {
		t.Fatalf("VAdd = %v", dst)
	}
	VSub(dst, a, b)
	if dst[0] != -1+1i {
		t.Fatalf("VSub = %v", dst)
	}
	VMul(dst, a, b)
	if dst[0] != 2+2i || dst[2] != -3+3i {
		t.Fatalf("VMul = %v", dst)
	}
	VConjMul(dst, a, b)
	if dst[1] != 2*(1+1i) {
		t.Fatalf("VConjMul = %v", dst)
	}
	VScale(dst, a, 2i)
	if dst[0] != -2+2i {
		t.Fatalf("VScale = %v", dst)
	}
	VApplyWindow(dst, a, []float64{0.5, 1, 2})
	if dst[0] != 0.5+0.5i || dst[2] != 6i {
		t.Fatalf("VApplyWindow = %v", dst)
	}
}

func TestVectorLengthMismatchPanics(t *testing.T) {
	funcs := map[string]func(){
		"VAdd":  func() { VAdd(make([]complex128, 2), make([]complex128, 3), make([]complex128, 2)) },
		"VMul":  func() { VMul(make([]complex128, 2), make([]complex128, 2), make([]complex128, 3)) },
		"Dot":   func() { Dot(make([]complex128, 2), make([]complex128, 3)) },
		"MagSq": func() { MagSq(make([]float64, 2), make([]complex128, 3)) },
	}
	for name, f := range funcs {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic on mismatch", name)
				}
			}()
			f()
		}()
	}
}

func TestDotHermitianProperty(t *testing.T) {
	// Property: Dot(a, b) == conj(Dot(b, a)) and Dot(a, a) is real >= 0.
	check := func(seed int64) bool {
		a := randComplex(16, seed)
		b := randComplex(16, seed+100)
		ab := Dot(a, b)
		ba := Dot(b, a)
		if cmplx.Abs(ab-cmplx.Conj(ba)) > 1e-12 {
			return false
		}
		aa := Dot(a, a)
		return math.Abs(imag(aa)) < 1e-12 && real(aa) >= 0
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMagSqAndEnergy(t *testing.T) {
	a := []complex128{3 + 4i, 1i}
	dst := make([]float64, 2)
	MagSq(dst, a)
	if dst[0] != 25 || dst[1] != 1 {
		t.Fatalf("MagSq = %v", dst)
	}
	if Energy(a) != 26 {
		t.Fatalf("Energy = %v", Energy(a))
	}
}

func TestPowerDB(t *testing.T) {
	a := []complex128{10, 0, 1}
	dst := make([]float64, 3)
	PowerDB(dst, a, -120)
	if math.Abs(dst[0]-20) > 1e-12 {
		t.Fatalf("PowerDB[0] = %v, want 20", dst[0])
	}
	if dst[1] != -120 {
		t.Fatalf("PowerDB floor = %v", dst[1])
	}
	if dst[2] != 0 {
		t.Fatalf("PowerDB unit = %v", dst[2])
	}
}

func TestMaxAbs(t *testing.T) {
	m, i := MaxAbs([]complex128{1, 5i, -3})
	if m != 5 || i != 1 {
		t.Fatalf("MaxAbs = %v, %d", m, i)
	}
	if _, i := MaxAbs(nil); i != -1 {
		t.Fatal("MaxAbs(nil) index should be -1")
	}
}

func TestWindows(t *testing.T) {
	for _, kind := range []WindowKind{WindowRect, WindowHann, WindowHamming, WindowBlackman, WindowKaiser} {
		w, err := Window(kind, 64)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if len(w) != 64 {
			t.Fatalf("%s: length %d", kind, len(w))
		}
		for i, v := range w {
			if v < -1e-12 || v > 1+1e-12 || math.IsNaN(v) {
				t.Fatalf("%s[%d] = %v out of [0,1]", kind, i, v)
			}
		}
	}
	// Rect is all ones; Hann starts at 0.
	rect, _ := Window(WindowRect, 8)
	for _, v := range rect {
		if v != 1 {
			t.Fatal("rect window not flat")
		}
	}
	hann, _ := Window(WindowHann, 8)
	if hann[0] != 0 {
		t.Fatalf("hann[0] = %v", hann[0])
	}
}

func TestWindowErrors(t *testing.T) {
	if _, err := Window("bogus", 8); err == nil {
		t.Fatal("unknown window accepted")
	}
	if _, err := Window(WindowHann, 0); err == nil {
		t.Fatal("zero-length window accepted")
	}
	if w, err := Window(WindowKaiser, 1); err != nil || len(w) != 1 {
		t.Fatalf("kaiser length 1: %v %v", w, err)
	}
}

func TestFIRMatchesConvolution(t *testing.T) {
	x := randComplex(50, 11)
	taps := []float64{0.5, 0.25, -0.125, 0.0625}
	dst := make([]complex128, len(x))
	FIR(dst, x, taps)
	full := Convolve(x, taps)
	if d := MaxDiff(dst, full[:len(x)]); d > 1e-12 {
		t.Fatalf("FIR deviates from convolution by %g", d)
	}
}

func TestFIRDecimate(t *testing.T) {
	x := randComplex(40, 12)
	taps := []float64{1, 0.5}
	full := make([]complex128, len(x))
	FIR(full, x, taps)
	dec := make([]complex128, 10)
	n := FIRDecimate(dec, x, taps, 4)
	if n != 10 {
		t.Fatalf("wrote %d outputs, want 10", n)
	}
	for i := 0; i < n; i++ {
		if dec[i] != full[4*i] {
			t.Fatalf("decimated[%d] != full[%d]", i, 4*i)
		}
	}
}

func TestFIRDecimateBadFactorPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	FIRDecimate(nil, nil, nil, 0)
}

func TestConvolveEdges(t *testing.T) {
	if Convolve(nil, []float64{1}) != nil {
		t.Fatal("empty input should give nil")
	}
	out := Convolve([]complex128{1, 2}, []float64{3})
	if len(out) != 2 || out[0] != 3 || out[1] != 6 {
		t.Fatalf("Convolve = %v", out)
	}
}

func TestBesselI0(t *testing.T) {
	// Reference values (Abramowitz & Stegun).
	cases := map[float64]float64{0: 1, 1: 1.2660658, 2: 2.2795853, 5: 27.239872}
	for x, want := range cases {
		if got := besselI0(x); math.Abs(got-want) > 1e-5*want {
			t.Errorf("I0(%v) = %v, want %v", x, got, want)
		}
	}
}
