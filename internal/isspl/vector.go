package isspl

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Vector primitives in the style of an embedded signal-processing library:
// destination-first, length-checked, allocation-free.

func checkLen3(op string, dst, a, b int) {
	if dst != a || dst != b {
		panic(fmt.Sprintf("isspl: %s length mismatch dst=%d a=%d b=%d", op, dst, a, b))
	}
}

func checkLen2(op string, dst, a int) {
	if dst != a {
		panic(fmt.Sprintf("isspl: %s length mismatch dst=%d src=%d", op, dst, a))
	}
}

// VAdd computes dst = a + b elementwise.
func VAdd(dst, a, b []complex128) {
	checkLen3("VAdd", len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i] + b[i]
	}
}

// VSub computes dst = a - b elementwise.
func VSub(dst, a, b []complex128) {
	checkLen3("VSub", len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i] - b[i]
	}
}

// VMul computes dst = a * b elementwise.
func VMul(dst, a, b []complex128) {
	checkLen3("VMul", len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// VConjMul computes dst = a * conj(b) elementwise (correlation kernels).
func VConjMul(dst, a, b []complex128) {
	checkLen3("VConjMul", len(dst), len(a), len(b))
	for i := range dst {
		dst[i] = a[i] * conj(b[i])
	}
}

// VScale computes dst = s * a.
func VScale(dst, a []complex128, s complex128) {
	checkLen2("VScale", len(dst), len(a))
	for i := range dst {
		dst[i] = s * a[i]
	}
}

// VApplyWindow computes dst = a * w for a real window w.
func VApplyWindow(dst, a []complex128, w []float64) {
	checkLen3("VApplyWindow", len(dst), len(a), len(w))
	for i := range dst {
		dst[i] = a[i] * complex(w[i], 0)
	}
}

// Dot returns the inner product sum(a[i] * conj(b[i])).
func Dot(a, b []complex128) complex128 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("isspl: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var sum complex128
	for i := range a {
		sum += a[i] * conj(b[i])
	}
	return sum
}

// MagSq writes |a[i]|^2 into dst.
func MagSq(dst []float64, a []complex128) {
	checkLen2("MagSq", len(dst), len(a))
	for i := range a {
		re, im := real(a[i]), imag(a[i])
		dst[i] = re*re + im*im
	}
}

// PowerDB writes 10*log10(|a[i]|^2) into dst, flooring at floorDB to avoid
// -Inf on exact zeros.
func PowerDB(dst []float64, a []complex128, floorDB float64) {
	checkLen2("PowerDB", len(dst), len(a))
	for i := range a {
		p := real(a[i])*real(a[i]) + imag(a[i])*imag(a[i])
		if p <= 0 {
			dst[i] = floorDB
			continue
		}
		db := 10 * math.Log10(p)
		if db < floorDB {
			db = floorDB
		}
		dst[i] = db
	}
}

// Energy returns sum(|a[i]|^2).
func Energy(a []complex128) float64 {
	var e float64
	for i := range a {
		re, im := real(a[i]), imag(a[i])
		e += re*re + im*im
	}
	return e
}

// MaxAbs returns the largest magnitude in a and its index (-1 for empty a).
func MaxAbs(a []complex128) (float64, int) {
	best, idx := 0.0, -1
	for i := range a {
		if m := cmplx.Abs(a[i]); m > best || idx == -1 {
			best, idx = m, i
		}
	}
	return best, idx
}

// MaxDiff returns the largest elementwise magnitude difference |a[i]-b[i]|,
// used throughout the tests to compare against references.
func MaxDiff(a, b []complex128) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("isspl: MaxDiff length mismatch %d vs %d", len(a), len(b)))
	}
	var worst float64
	for i := range a {
		if d := cmplx.Abs(a[i] - b[i]); d > worst {
			worst = d
		}
	}
	return worst
}
