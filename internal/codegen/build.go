package codegen

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// ModuleRoot walks up from the working directory looking for this repo's
// go.mod. The emitted program imports repro/internal/... packages, so the Go
// toolchain will only build it from a directory inside the module — build
// trees therefore live in throwaway .sage-exec-* directories under the root
// (ignored by git).
func ModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(dir, "go.mod"))
		if err == nil && bytes.Contains(data, []byte("module repro")) {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", errors.New("codegen: module root not found (run from inside the repro repo)")
		}
		dir = parent
	}
}

// HaveToolchain reports whether a go toolchain is on PATH; tests use it to
// skip compile-and-run coverage on stripped environments rather than fail.
func HaveToolchain() bool {
	_, err := exec.LookPath("go")
	return err == nil
}

// BuildOptions controls BuildAndRun.
type BuildOptions struct {
	Race bool   // build the emitted program with -race
	Vet  bool   // run `go vet` on the emitted package before building
	Keep string // if non-empty, also copy the emitted source tree here
}

// BuildResult carries the compiled program's observable behaviour.
type BuildResult struct {
	Stdout []byte // canonical sink output text (rtl.ParseText-able)
	Stderr string // wall-clock line and any diagnostics
}

// BuildAndRun writes the emitted source into a temporary package directory
// under the module root, compiles it with the host toolchain, runs the
// binary, and returns its output. The temp tree is always removed; pass
// BuildOptions.Keep to also persist a copy of the source.
func BuildAndRun(src []byte, opt BuildOptions) (*BuildResult, error) {
	root, err := ModuleRoot()
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp(root, ".sage-exec-")
	if err != nil {
		return nil, fmt.Errorf("codegen: %w", err)
	}
	defer os.RemoveAll(dir)
	if err := WritePackage(dir, src); err != nil {
		return nil, err
	}
	if opt.Keep != "" {
		if err := WritePackage(opt.Keep, src); err != nil {
			return nil, err
		}
	}

	if opt.Vet {
		if out, err := runIn(dir, "go", "vet", "."); err != nil {
			return nil, fmt.Errorf("codegen: go vet on emitted source: %w\n%s", err, out)
		}
	}
	bin := filepath.Join(dir, "prog")
	buildArgs := []string{"build", "-o", bin}
	if opt.Race {
		buildArgs = append(buildArgs, "-race")
	}
	buildArgs = append(buildArgs, ".")
	if out, err := runIn(dir, "go", buildArgs...); err != nil {
		return nil, fmt.Errorf("codegen: build emitted source: %w\n%s", err, out)
	}

	cmd := exec.Command(bin)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("codegen: run emitted program: %w\n%s", err, stderr.String())
	}
	return &BuildResult{Stdout: stdout.Bytes(), Stderr: stderr.String()}, nil
}

// WritePackage materializes the emitted source as a buildable package
// directory (main.go), creating dir if needed.
func WritePackage(dir string, src []byte) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("codegen: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "main.go"), src, 0o644); err != nil {
		return fmt.Errorf("codegen: %w", err)
	}
	return nil
}

// runIn runs one toolchain command in dir with combined output. GOFLAGS=-mod=mod
// is deliberately NOT set; the command inherits the environment so CI flags
// apply to emitted-code builds too.
func runIn(dir, name string, args ...string) (string, error) {
	cmd := exec.Command(name, args...)
	cmd.Dir = dir
	out, err := cmd.CombinedOutput()
	return strings.TrimSpace(string(out)), err
}
