// Package codegen closes the generation loop the paper only sketches: it
// turns gluegen's verified runtime tables into an actually compilable,
// runnable Go program. Plan lowers the tables into an rtl.Program — one
// goroutine per SAGE thread, one buffered-channel lane per striped transfer,
// funclib kinds on real []complex128 data — mirroring the simulated
// runtime's plan construction order exactly, so the real execution and the
// simulation are two backends of one plan. EmitSource renders the program as
// a standalone gofmt'd main package (byte-deterministic: golden-testable),
// and BuildAndRun compiles and executes it with the host toolchain, the
// end-to-end proof that generated glue code is correct outside the
// simulator.
package codegen

import (
	"fmt"

	"repro/internal/codegen/rtl"
	"repro/internal/gluegen"
	"repro/internal/model"
)

// connKey identifies one transfer lane: (logical buffer, src thread, dst
// thread) — the same triple the simulated runtime keys credits and message
// tags by.
type connKey struct {
	buf, src, dst int
}

// Plan lowers verified tables into an executable rtl.Program running the
// given number of iterations. Lane indices are assigned by walking the
// buffer table in ID order and each buffer's transfers in table order;
// threads are laid out function-by-function in table order — the identical
// deterministic walk sagert's buildPlan performs, so no map iteration can
// leak into the plan (or into the source emitted from it).
func Plan(tables *gluegen.Tables, iterations int) (*rtl.Program, error) {
	if err := tables.Verify(); err != nil {
		return nil, fmt.Errorf("codegen: refusing to plan unverified tables: %w", err)
	}
	if iterations < 1 {
		iterations = 1
	}
	connIdx := make(map[connKey]int)
	var conns []rtl.Conn
	for bi := range tables.Buffers {
		buf := &tables.Buffers[bi]
		src, err := tables.Function(buf.SrcFn)
		if err != nil {
			return nil, fmt.Errorf("codegen: buffer %d: %w", buf.ID, err)
		}
		dst, err := tables.Function(buf.DstFn)
		if err != nil {
			return nil, fmt.Errorf("codegen: buffer %d: %w", buf.ID, err)
		}
		for _, x := range buf.Transfers {
			key := connKey{buf.ID, x.SrcThread, x.DstThread}
			if _, dup := connIdx[key]; dup {
				return nil, fmt.Errorf("codegen: buffer %d: duplicate transfer %d->%d", buf.ID, x.SrcThread, x.DstThread)
			}
			connIdx[key] = len(conns)
			conns = append(conns, rtl.Conn{
				Buf: buf.ID, SrcFn: src.Name, SrcThread: x.SrcThread,
				DstFn: dst.Name, DstThread: x.DstThread,
			})
		}
	}

	var threads []rtl.Thread
	for fi := range tables.Functions {
		fe := &tables.Functions[fi]
		for th := 0; th < fe.Threads; th++ {
			t := rtl.Thread{
				Fn: fe.Name, Kind: fe.Kind, Node: fe.Nodes[th],
				Thread: th, Threads: fe.Threads, Params: copyParams(fe.Params),
			}
			if fe.Kind == "sink_matrix" && len(fe.Ins) == 1 {
				t.SinkRows, t.SinkCols = fe.Ins[0].Rows, fe.Ins[0].Cols
			}
			for pi := range fe.Ins {
				port, err := planPort(tables, connIdx, &fe.Ins[pi], fe, th, true)
				if err != nil {
					return nil, err
				}
				t.Ins = append(t.Ins, port)
			}
			for pi := range fe.Outs {
				port, err := planPort(tables, connIdx, &fe.Outs[pi], fe, th, false)
				if err != nil {
					return nil, err
				}
				t.Outs = append(t.Outs, port)
			}
			threads = append(threads, t)
		}
	}
	p := &rtl.Program{
		App: tables.AppName, Platform: tables.Platform, Iterations: iterations,
		Slots: rtl.DefaultSlots, Threads: threads, Conns: conns,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("codegen: planned an invalid program: %w", err)
	}
	return p, nil
}

// planPort builds one thread's view of one port, walking the port's buffer
// list and each buffer's transfer table in order — the same filter-by-side
// walk as the simulated runtime's portPlan.
func planPort(tables *gluegen.Tables, connIdx map[connKey]int, pe *gluegen.PortEntry, fe *gluegen.FuncEntry, thread int, isInput bool) (rtl.Port, error) {
	region, err := model.Partition(pe.Striping, pe.Rows, pe.Cols, fe.Threads, thread)
	if err != nil {
		return rtl.Port{}, fmt.Errorf("codegen: %s port %s: %w", fe.Name, pe.Name, err)
	}
	port := rtl.Port{Name: pe.Name, Region: region}
	for _, bufID := range pe.Buffers {
		buf := &tables.Buffers[bufID]
		for _, x := range buf.Transfers {
			if isInput {
				if buf.DstFn != fe.ID || buf.DstPort != pe.Name || x.DstThread != thread {
					continue
				}
			} else {
				if buf.SrcFn != fe.ID || buf.SrcPort != pe.Name || x.SrcThread != thread {
					continue
				}
			}
			idx, ok := connIdx[connKey{buf.ID, x.SrcThread, x.DstThread}]
			if !ok {
				return rtl.Port{}, fmt.Errorf("codegen: %s port %s: unplanned transfer b%d %d->%d",
					fe.Name, pe.Name, buf.ID, x.SrcThread, x.DstThread)
			}
			port.Xfers = append(port.Xfers, rtl.Xfer{Conn: idx, Region: x.Region})
		}
	}
	return port, nil
}

// copyParams clones a parameter map so the program never aliases the tables.
func copyParams(in map[string]any) map[string]any {
	if len(in) == 0 {
		return nil
	}
	out := make(map[string]any, len(in))
	for k, v := range in {
		out[k] = v
	}
	return out
}
