package codegen_test

import (
	"bytes"
	"flag"
	"fmt"
	"go/format"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/codegen"
	"repro/internal/codegen/rtl"
	"repro/internal/conformance"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
)

var update = flag.Bool("update", false, "rewrite golden files")

func reg(r0, c0, rows, cols int) model.Region {
	return model.Region{R0: r0, C0: c0, Rows: rows, Cols: cols}
}

// goldenProgram is a small hand-built program exercising every emitter
// feature: multiple threads, striped transfers, every parameter literal
// type, and a sink shape.
func goldenProgram() *rtl.Program {
	return &rtl.Program{
		App:        "golden",
		Platform:   "cluster/myrinet",
		Iterations: 2,
		Slots:      2,
		Threads: []rtl.Thread{
			{
				Fn: "src", Kind: "source_matrix", Node: 0, Thread: 0, Threads: 1,
				Params: map[string]any{"seed": 7, "gain": 1.5, "tag": "x", "fast": true},
				Outs: []rtl.Port{{Name: "out", Region: reg(0, 0, 4, 4), Xfers: []rtl.Xfer{
					{Conn: 0, Region: reg(0, 0, 2, 4)},
					{Conn: 1, Region: reg(2, 0, 2, 4)},
				}}},
			},
			{
				Fn: "snk", Kind: "sink_matrix", Node: 1, Thread: 0, Threads: 2,
				SinkRows: 4, SinkCols: 4,
				Ins: []rtl.Port{{Name: "in", Region: reg(0, 0, 2, 4), Xfers: []rtl.Xfer{
					{Conn: 0, Region: reg(0, 0, 2, 4)},
				}}},
			},
			{
				Fn: "snk", Kind: "sink_matrix", Node: 2, Thread: 1, Threads: 2,
				SinkRows: 4, SinkCols: 4,
				Ins: []rtl.Port{{Name: "in", Region: reg(2, 0, 2, 4), Xfers: []rtl.Xfer{
					{Conn: 1, Region: reg(2, 0, 2, 4)},
				}}},
			},
		},
		Conns: []rtl.Conn{
			{Buf: 0, SrcFn: "src", SrcThread: 0, DstFn: "snk", DstThread: 0},
			{Buf: 0, SrcFn: "src", SrcThread: 0, DstFn: "snk", DstThread: 1},
		},
	}
}

// TestEmitGolden pins the emitted source byte for byte. Regenerate with
// `go test ./internal/codegen -run TestEmitGolden -update` and review the
// diff like any other source change.
func TestEmitGolden(t *testing.T) {
	src, err := codegen.EmitSource(goldenProgram())
	if err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "golden_direct.go.txt")
	if *update {
		if err := os.WriteFile(golden, src, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(src, want) {
		t.Fatalf("emitted source differs from golden file %s;\nre-run with -update and review the diff\n--- got ---\n%s", golden, src)
	}
}

// TestEmitGofmtStable: the emitted source is its own gofmt fixed point.
func TestEmitGofmtStable(t *testing.T) {
	src, err := codegen.EmitSource(goldenProgram())
	if err != nil {
		t.Fatal(err)
	}
	formatted, err := format.Source(src)
	if err != nil {
		t.Fatalf("emitted source does not parse: %v", err)
	}
	if !bytes.Equal(src, formatted) {
		t.Fatal("emitted source is not gofmt-stable")
	}
}

// TestEmitByteDeterministic: repeated and concurrent emissions of the same
// program are byte-identical (no map-iteration-order leakage), including
// programs planned from real gluegen tables.
func TestEmitByteDeterministic(t *testing.T) {
	progs := []*rtl.Program{goldenProgram()}
	for seed := int64(0); seed < 4; seed++ {
		progs = append(progs, planSeed(t, seed))
	}
	for pi, prog := range progs {
		first, err := codegen.EmitSource(prog)
		if err != nil {
			t.Fatalf("program %d: %v", pi, err)
		}
		var wg sync.WaitGroup
		results := make([][]byte, 16)
		for i := range results {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				src, err := codegen.EmitSource(prog)
				if err == nil {
					results[i] = src
				}
			}(i)
		}
		wg.Wait()
		for i, src := range results {
			if !bytes.Equal(src, first) {
				t.Fatalf("program %d: emission %d differs from first", pi, i)
			}
		}
	}
}

// planSeed lowers one conformance-generated case into a program.
func planSeed(t *testing.T, seed int64) *rtl.Program {
	t.Helper()
	c, err := conformance.Generate(seed, conformance.GenConfig{Quick: true})
	if err != nil {
		t.Fatalf("seed %d: generate: %v", seed, err)
	}
	pl, err := platforms.ByName(c.Platform)
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	out, err := gluegen.Generate(gluegen.Input{
		App: c.App, Mapping: c.Mapping, Platform: pl, NumNodes: c.Nodes,
	})
	if err != nil {
		t.Fatalf("seed %d: gluegen: %v", seed, err)
	}
	prog, err := codegen.Plan(out.Tables, c.Iterations)
	if err != nil {
		t.Fatalf("seed %d: plan: %v", seed, err)
	}
	return prog
}

// TestPlanMatchesOracle: the planned program, executed in-process, matches
// the sequential oracle at every iteration for a sweep of generated cases.
func TestPlanMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		c, err := conformance.Generate(seed, conformance.GenConfig{Quick: true})
		if err != nil {
			t.Fatalf("seed %d: generate: %v", seed, err)
		}
		prog := planSeed(t, seed)
		res, err := rtl.Execute(prog)
		if err != nil {
			t.Fatalf("seed %d: execute: %v", seed, err)
		}
		if len(res.Iters) != c.Iterations {
			t.Fatalf("seed %d: %d iterations captured, want %d", seed, len(res.Iters), c.Iterations)
		}
		for iter := 0; iter < c.Iterations; iter++ {
			want, err := conformance.Oracle(c.App, iter)
			if err != nil {
				t.Fatalf("seed %d: oracle iter %d: %v", seed, iter, err)
			}
			if d := conformance.CompareOutputs(want, res.Iters[iter]); d != "" {
				t.Fatalf("seed %d iteration %d: %s", seed, iter, d)
			}
		}
	}
}

// TestEmitVetClean: the emitted source for a spread of generated programs
// passes gofmt round-trip (full `go vet` runs in the build e2e test).
func TestEmitVetClean(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		prog := planSeed(t, seed)
		src, err := codegen.EmitSource(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		formatted, err := format.Source(src)
		if err != nil {
			t.Fatalf("seed %d: emitted source does not parse: %v", seed, err)
		}
		if !bytes.Equal(src, formatted) {
			t.Fatalf("seed %d: emitted source is not gofmt-stable", seed)
		}
	}
}

// TestEmitRejectsInvalid: emission refuses invalid programs and unsupported
// parameter types rather than producing broken source.
func TestEmitRejectsInvalid(t *testing.T) {
	bad := goldenProgram()
	bad.Iterations = 0
	if _, err := codegen.EmitSource(bad); err == nil {
		t.Fatal("emitted an invalid program (iterations=0)")
	}
	nan := goldenProgram()
	nan.Threads[0].Params = map[string]any{"seed": 7, "bad": []int{1}}
	if _, err := codegen.EmitSource(nan); err == nil {
		t.Fatal("emitted an unsupported parameter type")
	}
}

// TestBuildAndRun is the end-to-end tentpole check: emit, compile with the
// host toolchain (vet-clean), run the binary, and demand the compiled
// program's stdout is byte-identical to the in-process execution's canonical
// text — which TestPlanMatchesOracle already ties to the oracle.
func TestBuildAndRun(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles with the host toolchain; skipped in -short")
	}
	if !codegen.HaveToolchain() {
		t.Skip("no go toolchain on PATH")
	}
	for _, seed := range []int64{0, 3} {
		prog := planSeed(t, seed)
		src, err := codegen.EmitSource(prog)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		inproc, err := rtl.Execute(prog)
		if err != nil {
			t.Fatalf("seed %d: in-process execute: %v", seed, err)
		}
		var want bytes.Buffer
		if err := inproc.WriteText(&want); err != nil {
			t.Fatal(err)
		}
		res, err := codegen.BuildAndRun(src, codegen.BuildOptions{Vet: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if !bytes.Equal(res.Stdout, want.Bytes()) {
			t.Fatalf("seed %d: compiled output differs from in-process output\n--- compiled ---\n%s--- in-process ---\n%s",
				seed, res.Stdout, want.Bytes())
		}
		parsed, err := rtl.ParseText(bytes.NewReader(res.Stdout))
		if err != nil {
			t.Fatalf("seed %d: parse compiled output: %v", seed, err)
		}
		if parsed.App != prog.App || len(parsed.Iters) != prog.Iterations {
			t.Fatalf("seed %d: parsed output header mismatch: app %q iters %d", seed, parsed.App, len(parsed.Iters))
		}
	}
}

// TestModuleRoot finds the repo root from the package directory.
func TestModuleRoot(t *testing.T) {
	root, err := codegen.ModuleRoot()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root %s has no go.mod: %v", root, err)
	}
}

// TestPlanRejectsNilTables guards the error path.
func TestPlanRejectsNilTables(t *testing.T) {
	if _, err := codegen.Plan(&gluegen.Tables{}, 1); err == nil {
		t.Fatal("planned empty tables")
	}
}

func ExampleEmitSource() {
	src, err := codegen.EmitSource(goldenProgram())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println(bytes.Contains(src, []byte("package main")))
	// Output: true
}
