package rtl

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/isspl"
)

// outputHeader identifies the canonical text format; bump on change.
const outputHeader = "sage-exec-output v1"

// WriteText renders the result in the canonical machine-readable form the
// differential drivers byte-compare: sinks in sorted name order, one sample
// per line as the hex IEEE-754 bit patterns of the real and imaginary parts.
// Bit patterns — not decimal renderings — so equality of the text is exactly
// bitwise equality of the samples. Wall-clock time is deliberately excluded:
// everything written here must be identical between the in-process and the
// compiled execution of the same program.
func (r *Result) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%s\napp %s\niterations %d\n", outputHeader, r.App, len(r.Iters))
	for i, outputs := range r.Iters {
		fmt.Fprintf(bw, "iteration %d\n", i)
		names := make([]string, 0, len(outputs))
		for name := range outputs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			m := outputs[name]
			fmt.Fprintf(bw, "sink %s %d %d\n", name, m.Rows, m.Cols)
			for _, v := range m.Data {
				fmt.Fprintf(bw, "%016x %016x\n", math.Float64bits(real(v)), math.Float64bits(imag(v)))
			}
		}
	}
	fmt.Fprintln(bw, "end")
	return bw.Flush()
}

// lineReader is a scanner with one line of pushback, for the sink-list
// lookahead in ParseText.
type lineReader struct {
	sc    *bufio.Scanner
	stash string
	has   bool
}

func (lr *lineReader) next() (string, bool) {
	if lr.has {
		lr.has = false
		return lr.stash, true
	}
	if !lr.sc.Scan() {
		return "", false
	}
	return lr.sc.Text(), true
}

func (lr *lineReader) unread(s string) { lr.stash, lr.has = s, true }

// ParseText reads the canonical form back into a Result (Wall is zero).
func ParseText(r io.Reader) (*Result, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	lr := &lineReader{sc: sc}
	fail := func(format string, args ...any) (*Result, error) {
		return nil, fmt.Errorf("rtl: parse output: "+format, args...)
	}

	line, ok := lr.next()
	if !ok || line != outputHeader {
		return fail("missing header %q (got %q)", outputHeader, line)
	}
	res := &Result{}
	line, ok = lr.next()
	if !ok || !strings.HasPrefix(line, "app ") {
		return fail("missing app line (got %q)", line)
	}
	res.App = strings.TrimPrefix(line, "app ")
	line, ok = lr.next()
	if !ok {
		return fail("missing iterations line")
	}
	var iters int
	if _, err := fmt.Sscanf(line, "iterations %d", &iters); err != nil || iters < 0 {
		return fail("bad iterations line %q", line)
	}

	for i := 0; i < iters; i++ {
		line, ok = lr.next()
		if want := fmt.Sprintf("iteration %d", i); !ok || line != want {
			return fail("expected %q, got %q", want, line)
		}
		outputs := map[string]*isspl.Matrix{}
		for {
			line, ok = lr.next()
			if !ok {
				return fail("truncated inside iteration %d", i)
			}
			if line == "end" || strings.HasPrefix(line, "iteration ") {
				lr.unread(line)
				break
			}
			var name string
			var rows, cols int
			if _, err := fmt.Sscanf(line, "sink %s %d %d", &name, &rows, &cols); err != nil {
				return fail("bad sink line %q", line)
			}
			if rows < 1 || cols < 1 || rows*cols > 1<<24 {
				return fail("implausible sink shape %dx%d", rows, cols)
			}
			if _, dup := outputs[name]; dup {
				return fail("duplicate sink %q in iteration %d", name, i)
			}
			m := isspl.NewMatrix(rows, cols)
			for s := 0; s < rows*cols; s++ {
				line, ok = lr.next()
				if !ok {
					return fail("sink %s: truncated at sample %d", name, s)
				}
				re, im, found := strings.Cut(line, " ")
				if !found {
					return fail("sink %s: bad sample line %q", name, line)
				}
				rb, err := strconv.ParseUint(re, 16, 64)
				if err != nil {
					return fail("sink %s sample %d: %v", name, s, err)
				}
				ib, err := strconv.ParseUint(im, 16, 64)
				if err != nil {
					return fail("sink %s sample %d: %v", name, s, err)
				}
				m.Data[s] = complex(math.Float64frombits(rb), math.Float64frombits(ib))
			}
			outputs[name] = m
		}
		res.Iters = append(res.Iters, outputs)
	}
	line, ok = lr.next()
	if !ok || line != "end" {
		return fail("missing end marker (got %q)", line)
	}
	return res, sc.Err()
}
