// Package rtl is the run-time library of the real-execution backend: the
// small substrate a generated SAGE program links against when it runs as an
// actual Go process instead of on the simulated multicomputer. Where the sim
// kernel realises a SAGE thread as a simulated process and a striped
// transfer as an MPI message with explicit pipelining credits, rtl realises
// the same plan with the host's own primitives:
//
//   - one goroutine per function thread;
//   - one single-producer single-consumer buffered channel per planned
//     transfer lane (buffer, source thread, destination thread), whose
//     capacity IS the credit bound — a channel of capacity Slots admits at
//     most Slots in-flight data sets and blocks the producer on the
//     Slots+1th exactly where the credit protocol of internal/mpi would
//     (the consumer frees a slot at the moment sagert returns a credit:
//     immediately after receiving that transfer);
//   - end-of-stream as channel close: a producer closes all its lanes after
//     the final iteration, and every consumer verifies each lane delivers
//     exactly Iterations messages — no more, no fewer.
//
// A Program is a closed plan: it references function kinds from
// internal/funclib by name but carries every region, lane and thread
// explicitly, so the generated source that embeds one is self-contained and
// auditable. Execution is deterministic by construction — every lane has one
// writer and one reader, every kind is a pure function of its inputs, and
// sink assembly writes disjoint or identical regions — so two runs (or the
// in-process and the compiled form of the same Program) produce bitwise
// identical outputs regardless of GOMAXPROCS or scheduling.
package rtl

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/funclib"
	"repro/internal/isspl"
	"repro/internal/model"
)

// DefaultSlots is the per-lane pipelining bound used when a Program does not
// set one; it matches sagert's default BufferSlots (double buffering).
const DefaultSlots = 2

// Xfer is one striped region moving over one lane each iteration.
type Xfer struct {
	// Conn indexes Program.Conns.
	Conn int
	// Region is the absolute sub-matrix carried per iteration; it lies
	// inside both endpoint partitions.
	Region model.Region
}

// Port is one thread's view of one of its function's ports: the partition
// the thread holds and the lanes that fill (inputs) or drain (outputs) it.
type Port struct {
	Name   string
	Region model.Region
	Xfers  []Xfer
}

// Thread is one goroutine of the generated program: a single thread of a
// function-table entry, bound to a funclib kind.
type Thread struct {
	Fn      string // function instance name
	Kind    string // funclib kind
	Node    int    // mapped processor (informational in real execution)
	Thread  int
	Threads int
	Params  map[string]any
	Ins     []Port
	Outs    []Port
	// SinkRows/SinkCols give the full assembly shape when Kind is
	// "sink_matrix" (the sink's input port type before striping).
	SinkRows, SinkCols int
}

// Conn is one single-producer single-consumer transfer lane. The identity
// fields exist for diagnostics and for auditing emitted source; execution
// only needs the index.
type Conn struct {
	Buf       int // gluegen logical buffer ID
	SrcFn     string
	SrcThread int
	DstFn     string
	DstThread int
}

func (c Conn) String() string {
	return fmt.Sprintf("b%d %s[%d]->%s[%d]", c.Buf, c.SrcFn, c.SrcThread, c.DstFn, c.DstThread)
}

// Program is a complete executable plan.
type Program struct {
	App        string
	Platform   string // platform the tables were generated for (informational)
	Iterations int
	// Slots is the per-lane pipelining credit; <= 0 selects DefaultSlots.
	Slots   int
	Threads []Thread
	Conns   []Conn
}

// Result reports one execution.
type Result struct {
	App string
	// Iters[i] holds iteration i's assembled sink outputs, one matrix per
	// sink function name. Unlike the simulated runtime — which moves real
	// samples only through its compute iterations — real execution computes
	// every iteration, so each entry is independently checkable against the
	// sequential oracle for that iteration.
	Iters []map[string]*isspl.Matrix
	// Wall is the host wall-clock time of the run (goroutine spawn to
	// drain). Excluded from the canonical text output.
	Wall time.Duration
}

// Validate checks the program's structural integrity: a positive iteration
// count, known kinds, every lane referenced by exactly one producer and one
// consumer xfer, every xfer region inside its port partition, and sink
// threads carrying an assembly shape.
func (p *Program) Validate() error {
	if p.Iterations < 1 {
		return fmt.Errorf("rtl: program declares %d iterations", p.Iterations)
	}
	if len(p.Threads) == 0 {
		return fmt.Errorf("rtl: program has no threads")
	}
	produced := make([]int, len(p.Conns))
	consumed := make([]int, len(p.Conns))
	for ti := range p.Threads {
		t := &p.Threads[ti]
		if _, err := funclib.Lookup(t.Kind); err != nil {
			return fmt.Errorf("rtl: thread %s[%d]: %w", t.Fn, t.Thread, err)
		}
		if t.Thread < 0 || t.Thread >= t.Threads {
			return fmt.Errorf("rtl: thread %s[%d]: index outside 0..%d", t.Fn, t.Thread, t.Threads-1)
		}
		if t.Kind == "sink_matrix" && (t.SinkRows < 1 || t.SinkCols < 1) {
			return fmt.Errorf("rtl: sink %s[%d]: missing assembly shape", t.Fn, t.Thread)
		}
		check := func(ports []Port, counts []int, side string) error {
			for pi := range ports {
				pp := &ports[pi]
				for _, x := range pp.Xfers {
					if x.Conn < 0 || x.Conn >= len(p.Conns) {
						return fmt.Errorf("rtl: %s[%d] %s port %s: conn %d out of range", t.Fn, t.Thread, side, pp.Name, x.Conn)
					}
					counts[x.Conn]++
					if x.Region.Intersect(pp.Region) != x.Region {
						return fmt.Errorf("rtl: %s[%d] %s port %s: transfer region %v spills outside partition %v",
							t.Fn, t.Thread, side, pp.Name, x.Region, pp.Region)
					}
				}
			}
			return nil
		}
		if err := check(t.Ins, consumed, "input"); err != nil {
			return err
		}
		if err := check(t.Outs, produced, "output"); err != nil {
			return err
		}
	}
	for ci := range p.Conns {
		if produced[ci] != 1 || consumed[ci] != 1 {
			return fmt.Errorf("rtl: conn %d (%s): %d producers, %d consumers (want exactly one of each)",
				ci, p.Conns[ci], produced[ci], consumed[ci])
		}
	}
	return nil
}

// slots returns the effective per-lane credit bound.
func (p *Program) slots() int {
	if p.Slots > 0 {
		return p.Slots
	}
	return DefaultSlots
}

// exec is one execution's runtime state.
type exec struct {
	p     *Program
	chans []chan *funclib.Block
	abort chan struct{}

	errOnce sync.Once
	err     error

	// sinkMu serialises sink assembly: replicated sink ports give several
	// threads the same (whole-matrix) region, and without the lock those
	// identical concurrent writes would be data races. Writes are identical
	// or disjoint by striping construction, so serialisation order never
	// changes the assembled bytes.
	sinkMu sync.Mutex
	iters  []map[string]*isspl.Matrix
}

// newExec prepares channels and per-iteration sink targets.
func newExec(p *Program) *exec {
	e := &exec{
		p:     p,
		chans: make([]chan *funclib.Block, len(p.Conns)),
		abort: make(chan struct{}),
		iters: make([]map[string]*isspl.Matrix, p.Iterations),
	}
	for i := range e.chans {
		e.chans[i] = make(chan *funclib.Block, p.slots())
	}
	for i := range e.iters {
		e.iters[i] = map[string]*isspl.Matrix{}
	}
	for ti := range p.Threads {
		t := &p.Threads[ti]
		if t.Kind != "sink_matrix" || t.Thread != 0 {
			continue
		}
		for i := range e.iters {
			e.iters[i][t.Fn] = isspl.NewMatrix(t.SinkRows, t.SinkCols)
		}
	}
	return e
}

// fail records the first error and releases every blocked thread.
func (e *exec) fail(err error) {
	e.errOnce.Do(func() {
		e.err = err
		close(e.abort)
	})
}

// send delivers b on lane conn, blocking while the lane holds Slots
// in-flight data sets (the credit bound). It reports false when the run
// aborted.
func (e *exec) send(conn int, b *funclib.Block) bool {
	select {
	case e.chans[conn] <- b:
		return true
	case <-e.abort:
		return false
	}
}

// recv takes the next data set from lane conn. A closed lane here is a
// protocol violation: the producer signalled end-of-stream before the
// consumer's final iteration.
func (e *exec) recv(conn, iter int) (*funclib.Block, bool) {
	select {
	case b, ok := <-e.chans[conn]:
		if !ok {
			e.fail(fmt.Errorf("rtl: conn %d (%s): EOS before iteration %d", conn, e.p.Conns[conn], iter))
			return nil, false
		}
		return b, true
	case <-e.abort:
		return nil, false
	}
}

// closeOuts signals end-of-stream on every lane this thread produces.
func (e *exec) closeOuts(t *Thread) {
	for pi := range t.Outs {
		for _, x := range t.Outs[pi].Xfers {
			close(e.chans[x.Conn])
		}
	}
}

// drainEOS verifies every input lane is cleanly closed after the final
// iteration: one extra message means the producer and consumer disagree on
// the iteration count.
func (e *exec) drainEOS(t *Thread) {
	for pi := range t.Ins {
		for _, x := range t.Ins[pi].Xfers {
			select {
			case b, ok := <-e.chans[x.Conn]:
				if ok && b != nil {
					e.fail(fmt.Errorf("rtl: conn %d (%s): message after the final iteration", x.Conn, e.p.Conns[x.Conn]))
					return
				}
			case <-e.abort:
				return
			}
		}
	}
}

// storeSink assembles one sink thread's block into the iteration's output
// matrix (same region arithmetic as the simulated runtime's sink path).
func (e *exec) storeSink(target *isspl.Matrix, b *funclib.Block) {
	e.sinkMu.Lock()
	for i := 0; i < b.Region.Rows; i++ {
		row := b.Region.R0 + i
		copy(target.Data[row*target.Cols+b.Region.C0:], b.Data[i*b.Region.Cols:(i+1)*b.Region.Cols])
	}
	e.sinkMu.Unlock()
}

// threadMain is the per-goroutine iteration loop: receive and assemble
// striped inputs, compute, pack and send striped outputs — then close lanes
// (EOS) and verify the inbound lanes closed too.
func (e *exec) threadMain(t *Thread, impl *funclib.Impl) {
	for iter := 0; iter < e.p.Iterations; iter++ {
		in := make(map[string]*funclib.Block, len(t.Ins))
		for pi := range t.Ins {
			pp := &t.Ins[pi]
			blk := funclib.NewBlock(pp.Region)
			for _, x := range pp.Xfers {
				got, ok := e.recv(x.Conn, iter)
				if !ok {
					return
				}
				copyRegion(blk, got, x.Region)
			}
			in[pp.Name] = blk
		}
		out := make(map[string]*funclib.Block, len(t.Outs))
		for pi := range t.Outs {
			pp := &t.Outs[pi]
			out[pp.Name] = funclib.NewBlock(pp.Region)
		}
		ctx := &funclib.Context{
			FuncName: t.Fn, Params: t.Params,
			Thread: t.Thread, Threads: t.Threads, Iteration: iter,
		}
		if t.Kind == "sink_matrix" {
			if target := e.iters[iter][t.Fn]; target != nil {
				ctx.Sink = func(port string, b *funclib.Block) { e.storeSink(target, b) }
			}
		}
		if err := impl.Compute(ctx, in, out); err != nil {
			e.fail(fmt.Errorf("rtl: %s thread %d iteration %d: %w", t.Fn, t.Thread, iter, err))
			return
		}
		for pi := range t.Outs {
			pp := &t.Outs[pi]
			blk := out[pp.Name]
			for _, x := range pp.Xfers {
				if !e.send(x.Conn, extractRegion(blk, x.Region)) {
					return
				}
			}
		}
	}
	e.closeOuts(t)
	e.drainEOS(t)
}

// Execute runs the program: one goroutine per thread, channel lanes between
// them, outputs assembled per iteration. It blocks until every thread
// finishes (or the first error aborts the run) and returns the per-iteration
// sink outputs.
func Execute(p *Program) (*Result, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	impls := make([]*funclib.Impl, len(p.Threads))
	for i := range p.Threads {
		impl, err := funclib.Lookup(p.Threads[i].Kind)
		if err != nil {
			return nil, err // unreachable: Validate looked every kind up
		}
		impls[i] = impl
	}
	e := newExec(p)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range p.Threads {
		wg.Add(1)
		go func(t *Thread, impl *funclib.Impl) {
			defer wg.Done()
			e.threadMain(t, impl)
		}(&p.Threads[i], impls[i])
	}
	wg.Wait()
	if e.err != nil {
		return nil, e.err
	}
	return &Result{App: p.App, Iters: e.iters, Wall: time.Since(start)}, nil
}

// copyRegion copies region reg from src into dst; both blocks must contain
// reg. Identical arithmetic to the simulated runtime's assembly path, so the
// two backends touch samples in the same way.
func copyRegion(dst, src *funclib.Block, reg model.Region) {
	for i := 0; i < reg.Rows; i++ {
		row := reg.R0 + i
		dstOff := (row-dst.Region.R0)*dst.Region.Cols + (reg.C0 - dst.Region.C0)
		srcOff := (row-src.Region.R0)*src.Region.Cols + (reg.C0 - src.Region.C0)
		copy(dst.Data[dstOff:dstOff+reg.Cols], src.Data[srcOff:srcOff+reg.Cols])
	}
}

// extractRegion returns a dense copy of region reg from blk.
func extractRegion(blk *funclib.Block, reg model.Region) *funclib.Block {
	out := funclib.NewBlock(reg)
	copyRegion(out, blk, reg)
	return out
}
