package rtl

import (
	"bytes"
	"fmt"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/funclib"
	"repro/internal/isspl"
	"repro/internal/model"
)

// reg abbreviates region literals in test programs.
func reg(r0, c0, rows, cols int) model.Region {
	return model.Region{R0: r0, C0: c0, Rows: rows, Cols: cols}
}

// whole is a full, unstriped 1-thread region over rows x cols.
func whole(rows, cols int) model.Region { return reg(0, 0, rows, cols) }

// directProgram is the minimal 1-thread graph: source -> sink over one lane.
func directProgram(rows, cols, iterations int) *Program {
	return &Program{
		App: "direct", Iterations: iterations, Slots: 2,
		Threads: []Thread{
			{Fn: "src", Kind: "source_matrix", Thread: 0, Threads: 1,
				Params: map[string]any{"seed": 7},
				Outs: []Port{{Name: "out", Region: whole(rows, cols),
					Xfers: []Xfer{{Conn: 0, Region: whole(rows, cols)}}}}},
			{Fn: "snk", Kind: "sink_matrix", Thread: 0, Threads: 1,
				SinkRows: rows, SinkCols: cols,
				Ins: []Port{{Name: "in", Region: whole(rows, cols),
					Xfers: []Xfer{{Conn: 0, Region: whole(rows, cols)}}}}},
		},
		Conns: []Conn{{Buf: 0, SrcFn: "src", SrcThread: 0, DstFn: "snk", DstThread: 0}},
	}
}

// sourceMatrix evaluates the source generator over a whole matrix, the
// reference the substrate outputs are checked against.
func sourceMatrix(seed int64, iter, rows, cols int) *isspl.Matrix {
	m := isspl.NewMatrix(rows, cols)
	b := &funclib.Block{Region: whole(rows, cols), Data: m.Data}
	funclib.FillSource(b, seed, iter)
	return m
}

func TestDirectOneThread(t *testing.T) {
	p := directProgram(4, 3, 3)
	res, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Iters) != 3 {
		t.Fatalf("got %d iterations", len(res.Iters))
	}
	for iter := 0; iter < 3; iter++ {
		want := sourceMatrix(7, iter, 4, 3)
		got := res.Iters[iter]["snk"]
		if got == nil || !reflect.DeepEqual(want.Data, got.Data) {
			t.Fatalf("iteration %d: sink mismatch", iter)
		}
	}
}

// TestLaneOrderingFIFO pins the per-(src,dst) ordering contract: each lane
// delivers data sets in iteration order, so a multi-iteration pipeline can
// never observe iteration k+1's region before iteration k's.
func TestLaneOrderingFIFO(t *testing.T) {
	p := directProgram(2, 2, 4)
	e := newExec(p)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4; i++ {
			b := funclib.NewBlock(whole(2, 2))
			b.Data[0] = complex(float64(i), 0)
			if !e.send(0, b) {
				t.Error("send aborted")
				return
			}
		}
	}()
	for i := 0; i < 4; i++ {
		b, ok := e.recv(0, i)
		if !ok {
			t.Fatal("recv aborted")
		}
		if real(b.Data[0]) != float64(i) {
			t.Fatalf("lane reordered: got data set %v at position %d", real(b.Data[0]), i)
		}
	}
	<-done
}

// TestLaneCreditBound pins the buffering contract: a lane admits exactly
// Slots in-flight data sets and blocks the producer on the next one — the
// channel-capacity realisation of internal/mpi's pipelining credits.
func TestLaneCreditBound(t *testing.T) {
	p := directProgram(2, 2, 1)
	p.Slots = 3
	e := newExec(p)
	if cap(e.chans[0]) != 3 {
		t.Fatalf("lane capacity %d, want Slots=3", cap(e.chans[0]))
	}
	for i := 0; i < 3; i++ {
		select {
		case e.chans[0] <- funclib.NewBlock(whole(2, 2)):
		default:
			t.Fatalf("send %d blocked inside the credit budget", i)
		}
	}
	select {
	case e.chans[0] <- funclib.NewBlock(whole(2, 2)):
		t.Fatal("send beyond Slots did not block: credit bound not enforced")
	default:
	}
	// Consuming one data set returns one credit: the blocked send proceeds.
	<-e.chans[0]
	select {
	case e.chans[0] <- funclib.NewBlock(whole(2, 2)):
	default:
		t.Fatal("send still blocked after a credit returned")
	}
}

// TestEOSPropagation pins the end-of-stream contract from both sides:
// premature close is detected by the receiver, a message after the final
// iteration is detected by the EOS drain, and a clean close passes it.
func TestEOSPropagation(t *testing.T) {
	p := directProgram(2, 2, 2)

	t.Run("premature", func(t *testing.T) {
		e := newExec(p)
		close(e.chans[0])
		if _, ok := e.recv(0, 1); ok {
			t.Fatal("recv on a closed lane succeeded")
		}
		if e.err == nil || !bytes.Contains([]byte(e.err.Error()), []byte("EOS before iteration 1")) {
			t.Fatalf("err = %v", e.err)
		}
	})

	t.Run("late-message", func(t *testing.T) {
		e := newExec(p)
		e.chans[0] <- funclib.NewBlock(whole(2, 2))
		close(e.chans[0])
		e.drainEOS(&p.Threads[1])
		if e.err == nil || !bytes.Contains([]byte(e.err.Error()), []byte("message after the final iteration")) {
			t.Fatalf("err = %v", e.err)
		}
	})

	t.Run("clean", func(t *testing.T) {
		e := newExec(p)
		e.closeOuts(&p.Threads[0])
		e.drainEOS(&p.Threads[1])
		if e.err != nil {
			t.Fatalf("clean EOS flagged: %v", e.err)
		}
	})
}

// TestAbortReleasesBlockedThreads: the first failure must release producers
// blocked on full lanes and consumers blocked on empty ones, so a broken run
// returns an error instead of deadlocking.
func TestAbortReleasesBlockedThreads(t *testing.T) {
	p := directProgram(2, 2, 1)
	p.Slots = 1
	e := newExec(p)
	e.chans[0] <- funclib.NewBlock(whole(2, 2)) // lane full: next send blocks
	sendDone := make(chan bool, 1)
	go func() { sendDone <- e.send(0, funclib.NewBlock(whole(2, 2))) }()
	e2 := newExec(p) // empty lane: recv blocks
	recvDone := make(chan bool, 1)
	go func() { _, ok := e2.recv(0, 0); recvDone <- ok }()
	e.fail(fmt.Errorf("boom"))
	e2.fail(fmt.Errorf("boom"))
	for name, ch := range map[string]chan bool{"send": sendDone, "recv": recvDone} {
		select {
		case ok := <-ch:
			if ok {
				t.Fatalf("blocked %s reported success after abort", name)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("blocked %s not released by abort", name)
		}
	}
}

// Fan-out: one source value consumed by two sinks (two lanes from the same
// producer port), including a replicated multi-thread sink whose threads
// assemble overlapping identical regions.
func TestFanOutTwoSinks(t *testing.T) {
	rows, cols := 4, 4
	p := &Program{
		App: "fanout", Iterations: 2, Slots: 2,
		Threads: []Thread{
			{Fn: "src", Kind: "source_matrix", Thread: 0, Threads: 1,
				Params: map[string]any{"seed": 11},
				Outs: []Port{{Name: "out", Region: whole(rows, cols), Xfers: []Xfer{
					{Conn: 0, Region: whole(rows, cols)},
					{Conn: 1, Region: whole(rows, cols)},
					{Conn: 2, Region: whole(rows, cols)},
				}}}},
			{Fn: "snkA", Kind: "sink_matrix", Thread: 0, Threads: 1,
				SinkRows: rows, SinkCols: cols,
				Ins: []Port{{Name: "in", Region: whole(rows, cols),
					Xfers: []Xfer{{Conn: 0, Region: whole(rows, cols)}}}}},
			// Replicated 2-thread sink: both threads hold (and store) the
			// whole matrix — the case that forces sink-assembly locking.
			{Fn: "snkB", Kind: "sink_matrix", Thread: 0, Threads: 2,
				SinkRows: rows, SinkCols: cols,
				Ins: []Port{{Name: "in", Region: whole(rows, cols),
					Xfers: []Xfer{{Conn: 1, Region: whole(rows, cols)}}}}},
			{Fn: "snkB", Kind: "sink_matrix", Thread: 1, Threads: 2,
				SinkRows: rows, SinkCols: cols,
				Ins: []Port{{Name: "in", Region: whole(rows, cols),
					Xfers: []Xfer{{Conn: 2, Region: whole(rows, cols)}}}}},
		},
		Conns: []Conn{
			{Buf: 0, SrcFn: "src", SrcThread: 0, DstFn: "snkA", DstThread: 0},
			{Buf: 1, SrcFn: "src", SrcThread: 0, DstFn: "snkB", DstThread: 0},
			{Buf: 1, SrcFn: "src", SrcThread: 0, DstFn: "snkB", DstThread: 1},
		},
	}
	res, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 2; iter++ {
		want := sourceMatrix(11, iter, rows, cols)
		for _, sink := range []string{"snkA", "snkB"} {
			got := res.Iters[iter][sink]
			if got == nil || !reflect.DeepEqual(want.Data, got.Data) {
				t.Fatalf("iteration %d sink %s: mismatch", iter, sink)
			}
		}
	}
}

// Fan-in: add2 consuming the same source value on both inputs (the
// double-arc shape), row-striped across two threads feeding a 1-thread sink.
func TestFanInDoubleArc(t *testing.T) {
	rows, cols := 4, 4
	top, bot := reg(0, 0, 2, 4), reg(2, 0, 2, 4)
	p := &Program{
		App: "fanin", Iterations: 2, Slots: 2,
		Threads: []Thread{
			{Fn: "src", Kind: "source_matrix", Thread: 0, Threads: 1,
				Params: map[string]any{"seed": 5},
				Outs: []Port{{Name: "out", Region: whole(rows, cols), Xfers: []Xfer{
					{Conn: 0, Region: top}, {Conn: 1, Region: bot}, // arc a
					{Conn: 2, Region: top}, {Conn: 3, Region: bot}, // arc b
				}}}},
			{Fn: "add", Kind: "add2", Thread: 0, Threads: 2,
				Ins: []Port{
					{Name: "a", Region: top, Xfers: []Xfer{{Conn: 0, Region: top}}},
					{Name: "b", Region: top, Xfers: []Xfer{{Conn: 2, Region: top}}},
				},
				Outs: []Port{{Name: "out", Region: top, Xfers: []Xfer{{Conn: 4, Region: top}}}}},
			{Fn: "add", Kind: "add2", Thread: 1, Threads: 2,
				Ins: []Port{
					{Name: "a", Region: bot, Xfers: []Xfer{{Conn: 1, Region: bot}}},
					{Name: "b", Region: bot, Xfers: []Xfer{{Conn: 3, Region: bot}}},
				},
				Outs: []Port{{Name: "out", Region: bot, Xfers: []Xfer{{Conn: 5, Region: bot}}}}},
			{Fn: "snk", Kind: "sink_matrix", Thread: 0, Threads: 1,
				SinkRows: rows, SinkCols: cols,
				Ins: []Port{{Name: "in", Region: whole(rows, cols), Xfers: []Xfer{
					{Conn: 4, Region: top}, {Conn: 5, Region: bot},
				}}}},
		},
		Conns: []Conn{
			{Buf: 0, SrcFn: "src", SrcThread: 0, DstFn: "add", DstThread: 0},
			{Buf: 0, SrcFn: "src", SrcThread: 0, DstFn: "add", DstThread: 1},
			{Buf: 1, SrcFn: "src", SrcThread: 0, DstFn: "add", DstThread: 0},
			{Buf: 1, SrcFn: "src", SrcThread: 0, DstFn: "add", DstThread: 1},
			{Buf: 2, SrcFn: "add", SrcThread: 0, DstFn: "snk", DstThread: 0},
			{Buf: 2, SrcFn: "add", SrcThread: 1, DstFn: "snk", DstThread: 0},
		},
	}
	res, err := Execute(p)
	if err != nil {
		t.Fatal(err)
	}
	for iter := 0; iter < 2; iter++ {
		src := sourceMatrix(5, iter, rows, cols)
		got := res.Iters[iter]["snk"]
		if got == nil {
			t.Fatalf("iteration %d: no sink output", iter)
		}
		for i := range src.Data {
			if got.Data[i] != src.Data[i]+src.Data[i] {
				t.Fatalf("iteration %d sample %d: got %v, want %v", iter, i, got.Data[i], 2*src.Data[i])
			}
		}
	}
}

// TestExecuteDeterministic: repeated runs are bitwise identical (pure kinds
// on single-reader single-writer lanes leave scheduling no way in).
func TestExecuteDeterministic(t *testing.T) {
	ref, err := Execute(directProgram(8, 8, 3))
	if err != nil {
		t.Fatal(err)
	}
	var refText bytes.Buffer
	if err := ref.WriteText(&refText); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		res, err := Execute(directProgram(8, 8, 3))
		if err != nil {
			t.Fatal(err)
		}
		var text bytes.Buffer
		if err := res.WriteText(&text); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refText.Bytes(), text.Bytes()) {
			t.Fatalf("run %d produced different bytes", i)
		}
	}
}

func TestValidateRejectsBadPrograms(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Program)
		want string
	}{
		{"zero-iterations", func(p *Program) { p.Iterations = 0 }, "iterations"},
		{"unknown-kind", func(p *Program) { p.Threads[0].Kind = "nope" }, "unknown function kind"},
		{"conn-range", func(p *Program) { p.Threads[0].Outs[0].Xfers[0].Conn = 9 }, "out of range"},
		{"unconsumed-conn", func(p *Program) { p.Threads[1].Ins[0].Xfers = nil }, "consumers"},
		{"spill", func(p *Program) { p.Threads[0].Outs[0].Xfers[0].Region = reg(0, 0, 9, 9) }, "spills"},
		{"sink-shape", func(p *Program) { p.Threads[1].SinkRows = 0 }, "assembly shape"},
		{"thread-index", func(p *Program) { p.Threads[0].Thread = 3 }, "index outside"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := directProgram(4, 4, 2)
			tc.mut(p)
			err := p.Validate()
			if err == nil || !bytes.Contains([]byte(err.Error()), []byte(tc.want)) {
				t.Fatalf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestOutputTextRoundTrip(t *testing.T) {
	res, err := Execute(directProgram(3, 5, 2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if back.App != res.App || len(back.Iters) != len(res.Iters) {
		t.Fatalf("round trip lost identity: %q %d", back.App, len(back.Iters))
	}
	for i := range res.Iters {
		if !reflect.DeepEqual(res.Iters[i]["snk"].Data, back.Iters[i]["snk"].Data) {
			t.Fatalf("iteration %d: samples changed in round trip", i)
		}
	}
	var again bytes.Buffer
	if err := back.WriteText(&again); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("re-render of parsed output differs")
	}
}

func TestParseTextRejectsCorrupt(t *testing.T) {
	res, err := Execute(directProgram(2, 2, 1))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()
	bad := []string{
		"",
		"bogus\n",
		strings.Replace(good, "end\n", "", 1),
		strings.Replace(good, "iteration 0", "iteration 1", 1),
		strings.Replace(good, "sink snk 2 2", "sink snk 2 0", 1),
	}
	for i, text := range bad {
		if _, err := ParseText(bytes.NewReader([]byte(text))); err == nil {
			t.Fatalf("corrupt output %d parsed cleanly", i)
		}
	}
}
