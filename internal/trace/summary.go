package trace

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// summaryTopWaits bounds the contention table per run.
const summaryTopWaits = 8

// WriteSummary renders a per-run text summary of the merged trace: node
// counters (messages, bytes, busy split, utilisation), per-link traffic,
// collective counts and the most-contended wait objects. This is the quick
// textual companion to the Chrome export.
func (t *Trace) WriteSummary(w io.Writer) error {
	runs := t.Runs()
	if len(runs) == 0 {
		_, err := fmt.Fprintln(w, "trace: no runs recorded")
		return err
	}
	for i, c := range runs {
		label := c.Label
		if label == "" {
			label = fmt.Sprintf("run %d", i)
		}
		fmt.Fprintf(w, "== %s ==\n", label)
		fmt.Fprintf(w, "elapsed %v virtual, %d kernel events, %d spans\n",
			c.elapsed, c.dispatched, len(c.spans))
		if len(c.nodes) > 0 {
			fmt.Fprintf(w, "%5s %8s %12s  %-14s %-14s %-14s %-14s %6s\n",
				"node", "msgs", "bytes", "compute", "copy", "comm", "idle", "util")
			for _, nt := range c.nodes {
				idle := sim.Duration(c.elapsed) - nt.ComputeBusy - nt.CopyBusy
				if idle < 0 {
					idle = 0
				}
				util := 0.0
				if c.elapsed > 0 {
					util = 100 * float64(nt.ComputeBusy+nt.CopyBusy) / float64(c.elapsed)
				}
				fmt.Fprintf(w, "%5d %8d %12d  %-14v %-14v %-14v %-14v %5.1f%%\n",
					nt.Node, nt.MsgsSent, nt.BytesSent, nt.ComputeBusy, nt.CopyBusy,
					nt.CommBusy, idle, util)
			}
		}
		if links := c.Links(); len(links) > 0 {
			fmt.Fprintf(w, "links:")
			for _, l := range links {
				fmt.Fprintf(w, " %d->%d %dB/%d", l.Src, l.Dst, l.Bytes, l.Msgs)
			}
			fmt.Fprintln(w)
		}
		if colls := c.Collectives(); len(colls) > 0 {
			fmt.Fprintf(w, "collectives:")
			for _, cl := range colls {
				fmt.Fprintf(w, " %s x%d", cl.Name, cl.Count)
			}
			fmt.Fprintln(w)
		}
		if faults := c.Faults(); len(faults) > 0 {
			fmt.Fprintf(w, "faults:")
			for _, fk := range faults {
				fmt.Fprintf(w, " %s x%d", fk.Kind, fk.Count)
			}
			fmt.Fprintln(w)
		}
		if streams := c.Streams(); len(streams) > 0 {
			fmt.Fprintf(w, "stream:")
			for _, sk := range streams {
				fmt.Fprintf(w, " %s x%d", sk.Kind, sk.Count)
			}
			fmt.Fprintln(w)
		}
		if waits := c.Waits(); len(waits) > 0 {
			fmt.Fprintf(w, "top waits:\n")
			for j, wt := range waits {
				if j == summaryTopWaits {
					fmt.Fprintf(w, "  ... and %d more\n", len(waits)-summaryTopWaits)
					break
				}
				fmt.Fprintf(w, "  %-50s %12v over %d waits\n", wt.Key, wt.Total, wt.Count)
			}
		}
		fmt.Fprintln(w)
	}
	return nil
}
