package trace

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func ms(d int) sim.Time { return sim.Time(time.Duration(d) * time.Millisecond) }

// sampleCollector builds a collector covering every event kind.
func sampleCollector(label string) *Collector {
	c := New(label)
	c.ProcStart(1, "worker", 0)
	c.Phase(LayerSage, 0, ProcTrack("worker", 1), "recv", 0, ms(1), ms(2))
	c.Xfer(LayerSage, 0, ProcTrack("worker", 1), "send b0", 4096, 0, ms(2), ms(3))
	c.Collective(0, ProcTrack("worker", 1), "alltoall[bruck]", ms(3), ms(5))
	c.Wait(1, "worker", "recv", "mpi.rank0.recv(src=1,tag=7)", ms(5), ms(6), 0)
	c.Wait(1, "worker", "acquire", "CSPI.n0.cpu", ms(6), ms(7), 2)
	c.LinkTransfer(0, 1, 4096)
	c.LinkTransfer(0, 1, 1024)
	c.AddNodeTotals(NodeTotals{Node: 0, ComputeBusy: sim.Duration(time.Millisecond),
		MsgsSent: 2, BytesSent: 5120})
	c.ProcEnd(1, "worker", ms(8))
	c.elapsed = ms(8)
	c.dispatched = 42
	return c
}

// TestNilCollectorIsSafe pins the zero-overhead-when-disabled contract:
// every method of a nil *Collector must be a no-op, not a panic.
func TestNilCollectorIsSafe(t *testing.T) {
	var c *Collector
	if c.Enabled() {
		t.Fatal("nil collector reports enabled")
	}
	c.Span(LayerSim, 0, "t", "n", 0, 1)
	c.Phase(LayerSage, 0, "t", "n", 0, 0, 1)
	c.Xfer(LayerSage, 0, "t", "n", 10, 0, 0, 1)
	c.Collective(0, "t", "n", 0, 1)
	c.LinkTransfer(0, 1, 10)
	c.AddNodeTotals(NodeTotals{})
	c.Finish(sim.NewKernel())
	c.ProcStart(1, "p", 0)
	c.ProcEnd(1, "p", 1)
	c.Wait(1, "p", "recv", "ch", 0, 1, 0)
	c.ChanOp("send", "ch", 1, 0)
	c.ResourceOp("acquire", "r", 1, 1, 0, 0)
	if c.Spans() != nil || c.Nodes() != nil || c.Links() != nil || c.Waits() != nil || c.Collectives() != nil {
		t.Fatal("nil collector returned non-nil data")
	}
	// A nil collector added to a trace must be skipped.
	tr := NewTrace()
	tr.Add(nil)
	if len(tr.Runs()) != 0 {
		t.Fatalf("nil collector merged: %d runs", len(tr.Runs()))
	}
}

// TestWaitCounterNormalisation pins the counter-key scheme: endpoint detail
// in parentheses aggregates into one counter, while spans keep the full
// name; acquire waits stay counter-only unless Verbose.
func TestWaitCounterNormalisation(t *testing.T) {
	c := New("w")
	c.Wait(1, "p", "recv", "mpi.rank0.recv(src=1,tag=7)", 0, ms(1), 0)
	c.Wait(2, "q", "recv", "mpi.rank0.recv(src=3,tag=9)", 0, ms(2), 0)
	c.Wait(1, "p", "acquire", "CSPI.n0.cpu", 0, ms(4), 1)
	waits := c.Waits()
	if len(waits) != 2 {
		t.Fatalf("got %d wait keys, want 2 (endpoints should aggregate): %+v", len(waits), waits)
	}
	// Sorted by total descending: the 4ms acquire first.
	if waits[0].Key != "acquire CSPI.n0.cpu" || waits[0].Count != 1 {
		t.Fatalf("waits[0] = %+v", waits[0])
	}
	if waits[1].Key != "recv mpi.rank0.recv" || waits[1].Count != 2 || waits[1].Total != sim.Duration(3*time.Millisecond) {
		t.Fatalf("waits[1] = %+v", waits[1])
	}
	// Only the recv waits became spans (plus nothing else): acquire is
	// counter-only by default.
	for _, s := range c.Spans() {
		if strings.HasPrefix(s.Name, "wait:acquire") {
			t.Fatalf("acquire wait span recorded without Verbose: %+v", s)
		}
	}
	v := New("v")
	v.Verbose = true
	v.Wait(1, "p", "acquire", "CSPI.n0.cpu", 0, ms(1), 1)
	found := false
	for _, s := range v.Spans() {
		if strings.HasPrefix(s.Name, "wait:acquire") {
			found = true
		}
	}
	if !found {
		t.Fatal("Verbose collector dropped the acquire wait span")
	}
}

// TestChromeExportValidates pins the exporter against the validator: the
// output must be well-formed Chrome JSON with per-track monotonic
// timestamps and the expected layers.
func TestChromeExportValidates(t *testing.T) {
	tr := NewTrace()
	tr.Add(sampleCollector("run A"))
	tr.Add(sampleCollector("run B"))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("exporter output rejected by validator: %v\n%s", err, buf.String())
	}
	for _, layer := range []string{"sim", "sagert", "mpi"} {
		if stats.Cats[layer] == 0 {
			t.Fatalf("no %s spans in export (cats: %v)", layer, stats.Cats)
		}
	}
	// Out-of-order recording must still export monotonically: spans are
	// sorted per track.
	c := New("ooo")
	c.Span(LayerSim, 0, "t", "late", ms(5), ms(6))
	c.Span(LayerSim, 0, "t", "early", ms(1), ms(2))
	tr2 := NewTrace()
	tr2.Add(c)
	buf.Reset()
	if err := tr2.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateChrome(buf.Bytes()); err != nil {
		t.Fatalf("out-of-order spans not sorted for export: %v", err)
	}
}

// TestChromeExportDeterministic pins byte-identical output for identical
// runs — the property the parallel-sweep merge relies on.
func TestChromeExportDeterministic(t *testing.T) {
	build := func() []byte {
		tr := NewTrace()
		tr.Add(sampleCollector("run A"))
		tr.Add(sampleCollector("run B"))
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("two identical traces exported different bytes")
	}
}

// TestValidateChromeRejects pins the validator's negative cases.
func TestValidateChromeRejects(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"no events":     `{"traceEvents":[]}`,
		"missing ph":    `{"traceEvents":[{"name":"a","ts":1,"pid":1,"tid":1}]}`,
		"unknown phase": `{"traceEvents":[{"name":"a","ph":"Z","ts":1,"pid":1,"tid":1}]}`,
		"negative ts":   `{"traceEvents":[{"name":"a","ph":"X","ts":-1,"dur":1,"pid":1,"tid":1}]}`,
		"non-monotonic": `{"traceEvents":[{"name":"a","ph":"X","ts":5,"dur":1,"pid":1,"tid":1},{"name":"b","ph":"X","ts":2,"dur":1,"pid":1,"tid":1}]}`,
	}
	for name, src := range cases {
		if _, err := ValidateChrome([]byte(src)); err == nil {
			t.Errorf("%s: validator accepted %s", name, src)
		}
	}
}

// TestSummaryIncludesRunSections smoke-tests the text summary.
func TestSummaryIncludesRunSections(t *testing.T) {
	tr := NewTrace()
	tr.Add(sampleCollector("summary run"))
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"summary run", "alltoall[bruck]", "recv mpi.rank0.recv", "0->1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

// TestProcLifetimeSpan pins the ProcStart/ProcEnd pairing.
func TestProcLifetimeSpan(t *testing.T) {
	c := New("p")
	c.ProcStart(3, "thread", ms(1))
	c.ProcEnd(3, "thread", ms(9))
	spans := c.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "proc thread" || s.Start != ms(1) || s.End != ms(9) || s.Node != NodeKernel {
		t.Fatalf("lifetime span = %+v", s)
	}
}
