package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"repro/internal/sim"
)

// chromeEvent is one entry of the Chrome trace-event JSON array. Field names
// follow the trace-event format specification: ph is the phase (X complete,
// i instant, C counter, M metadata), ts/dur are microseconds.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// usec converts virtual nanoseconds to trace-event microseconds.
func usec(t sim.Time) float64 { return float64(t) / 1e3 }

// chromeWriter assigns stable pid/tid numbers and streams events.
type chromeWriter struct {
	w    *bufio.Writer
	pids map[string]int // process key -> pid
	tids map[[2]any]int // (pid, track) -> tid
	n    int            // events written
	err  error
}

func (cw *chromeWriter) emit(ev chromeEvent) {
	if cw.err != nil {
		return
	}
	b, err := json.Marshal(ev)
	if err != nil {
		cw.err = err
		return
	}
	if cw.n > 0 {
		cw.w.WriteString(",\n")
	}
	cw.w.Write(b)
	cw.n++
}

// pid returns (allocating if needed) the pid for a process key, emitting the
// process_name metadata on first use.
func (cw *chromeWriter) pid(key, displayName string) int {
	if id, ok := cw.pids[key]; ok {
		return id
	}
	id := len(cw.pids) + 1
	cw.pids[key] = id
	cw.emit(chromeEvent{Name: "process_name", Ph: "M", Pid: id, Tid: 0,
		Args: map[string]any{"name": displayName}})
	cw.emit(chromeEvent{Name: "process_sort_index", Ph: "M", Pid: id, Tid: 0,
		Args: map[string]any{"sort_index": id}})
	return id
}

// tid returns (allocating if needed) the tid for a track within a pid,
// emitting the thread_name metadata on first use.
func (cw *chromeWriter) tid(pid int, track string) int {
	key := [2]any{pid, track}
	if id, ok := cw.tids[key]; ok {
		return id
	}
	id := 0
	for k := range cw.tids {
		if k[0] == pid {
			id++
		}
	}
	id++ // tids are 1-based within the process
	cw.tids[key] = id
	cw.emit(chromeEvent{Name: "thread_name", Ph: "M", Pid: pid, Tid: id,
		Args: map[string]any{"name": track}})
	return id
}

// processKey groups a run's events into Chrome processes: one per machine
// node plus one for the kernel.
func processKey(runIdx, node int) string { return fmt.Sprintf("r%d/n%d", runIdx, node) }

func processName(label string, node int) string {
	if node == NodeKernel {
		return label + " · kernel"
	}
	return fmt.Sprintf("%s · node %d", label, node)
}

// WriteChrome emits the merged trace as Chrome trace-event JSON (object
// form, with displayTimeUnit ns). Each run becomes its own group of
// processes — one per machine node plus a kernel process — so the
// per-run virtual clocks (which all start at zero) never interleave on a
// track. Within every track, spans are emitted sorted by start time, so
// timestamps are monotonic per track (ValidateChrome checks this).
func (t *Trace) WriteChrome(w io.Writer) error {
	cw := &chromeWriter{w: bufio.NewWriter(w), pids: map[string]int{}, tids: map[[2]any]int{}}
	cw.w.WriteString("{\"traceEvents\":[\n")
	for runIdx, c := range t.Runs() {
		label := c.Label
		if label == "" {
			label = fmt.Sprintf("run %d", runIdx)
		}
		// Group spans and instants by (node, track), preserving determinism
		// via sorted iteration. A track may carry both (the fault track mixes
		// retry spans with drop instants), so each track's events are merged
		// into one timestamp-sorted stream — ValidateChrome demands per-track
		// monotonicity in stream order.
		type trackKey struct {
			node  int
			track string
		}
		type trackEv struct {
			start, end sim.Time
			span       bool
			gauge      bool
			s          Span
			in         Instant
			g          Gauge
		}
		tracks := map[trackKey][]trackEv{}
		for _, s := range c.spans {
			k := trackKey{s.Node, s.Track}
			tracks[k] = append(tracks[k], trackEv{start: s.Start, end: s.End, span: true, s: s})
		}
		for _, in := range c.instants {
			k := trackKey{in.Node, in.Track}
			tracks[k] = append(tracks[k], trackEv{start: in.At, end: in.At, in: in})
		}
		for _, g := range c.gauges {
			k := trackKey{g.Node, g.Track}
			tracks[k] = append(tracks[k], trackEv{start: g.At, end: g.At, gauge: true, g: g})
		}
		keys := make([]trackKey, 0, len(tracks))
		for k := range tracks {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].node != keys[j].node {
				return keys[i].node < keys[j].node
			}
			return keys[i].track < keys[j].track
		})
		for _, k := range keys {
			pid := cw.pid(processKey(runIdx, k.node), processName(label, k.node))
			tid := cw.tid(pid, k.track)
			evs := tracks[k]
			sort.SliceStable(evs, func(i, j int) bool {
				if evs[i].start != evs[j].start {
					return evs[i].start < evs[j].start
				}
				if evs[i].span != evs[j].span {
					return evs[i].span // spans before instants at equal time
				}
				return evs[i].end > evs[j].end // outer span first at equal start
			})
			for _, ev := range evs {
				if ev.gauge {
					cw.emit(chromeEvent{Name: ev.g.Name, Cat: string(ev.g.Layer), Ph: "C",
						Ts: usec(ev.g.At), Pid: pid, Tid: tid,
						Args: map[string]any{"value": ev.g.Value}})
					continue
				}
				if !ev.span {
					cw.emit(chromeEvent{Name: ev.in.Name, Cat: string(ev.in.Layer), Ph: "i",
						Ts: usec(ev.in.At), Pid: pid, Tid: tid, S: "t",
						Args: map[string]any{"value": ev.in.Value}})
					continue
				}
				s := ev.s
				args := map[string]any{}
				if s.Bytes >= 0 {
					args["bytes"] = s.Bytes
				}
				if s.Iter >= 0 {
					args["iter"] = s.Iter
				}
				if s.Depth >= 0 {
					args["queue_depth"] = s.Depth
				}
				if len(args) == 0 {
					args = nil
				}
				cw.emit(chromeEvent{Name: s.Name, Cat: string(s.Layer), Ph: "X",
					Ts: usec(s.Start), Dur: float64(s.End.Sub(s.Start)) / 1e3, Pid: pid, Tid: tid, Args: args})
			}
		}
	}
	if cw.err != nil {
		return cw.err
	}
	cw.w.WriteString("\n],\"displayTimeUnit\":\"ns\"}\n")
	return cw.w.Flush()
}
