package trace

import (
	"bytes"
	"strings"
	"testing"
)

// streamCollector covers every stream-event entry point: workload instants
// (admit, shed, late), protocol spans (quiesce, drain, migrate) and
// backpressure gauges (backlog, qdepth, credit-stall) — mixed with a regular
// sagert span so the stream track coexists with normal tracks.
func streamCollector(label string) *Collector {
	c := New(label)
	c.ProcStart(1, "worker", 0)
	c.Phase(LayerSage, 0, ProcTrack("worker", 1), "recv", 0, ms(1), ms(2))
	c.StreamPoint(0, "admit frame 0 class interactive", ms(1))
	c.StreamPoint(0, "shed frame 1 class interactive", ms(2))
	c.StreamPoint(0, "late frame 0", ms(5))
	c.StreamPoint(0, "eos", ms(7))
	c.StreamGauge(0, StreamTrack, "backlog", 3, ms(2))
	c.StreamGauge(0, StreamTrack, "backlog", 1, ms(3))
	c.StreamGauge(1, ProcTrack("worker", 1), "qdepth worker", 2, ms(3))
	c.StreamSpan(1, ProcTrack("worker", 1), "credit-stall b0", ms(3), ms(4))
	c.StreamSpan(0, StreamTrack, "quiesce", ms(4), ms(5))
	c.StreamSpan(0, StreamTrack, "drain", ms(5), ms(6))
	c.StreamSpan(1, ProcTrack("worker", 1), "migrate node 1->3", ms(6), ms(7))
	c.ProcEnd(1, "worker", ms(8))
	c.elapsed = ms(8)
	return c
}

// TestStreamCounts pins the Streams() accounting: every stream point, span
// and gauge counts once under its first name token, sorted by kind, and
// everything the collector emits is inside the validator vocabulary.
func TestStreamCounts(t *testing.T) {
	c := streamCollector("s")
	want := map[string]int{
		"admit": 1, "shed": 1, "late": 1, "eos": 1,
		"backlog": 2, "qdepth": 1, "credit-stall": 1,
		"quiesce": 1, "drain": 1, "migrate": 1,
	}
	got := c.Streams()
	if len(got) != len(want) {
		t.Fatalf("got %d stream kinds, want %d: %+v", len(got), len(want), got)
	}
	for i, s := range got {
		if want[s.Kind] != s.Count {
			t.Errorf("kind %q: count %d, want %d", s.Kind, s.Count, want[s.Kind])
		}
		if i > 0 && got[i-1].Kind >= s.Kind {
			t.Errorf("kinds not sorted: %q before %q", got[i-1].Kind, s.Kind)
		}
		if !StreamKinds[s.Kind] {
			t.Errorf("collector emitted kind %q outside StreamKinds", s.Kind)
		}
	}
}

// TestNilCollectorStreamMethods extends the nil-safety contract to the
// stream entry points.
func TestNilCollectorStreamMethods(t *testing.T) {
	var c *Collector
	c.StreamPoint(0, "admit x", 0)
	c.StreamSpan(0, "t", "drain", 0, 1)
	c.StreamGauge(0, "t", "backlog", 1, 0)
	if c.Streams() != nil || c.Gauges() != nil {
		t.Fatal("nil collector returned stream counts or gauges")
	}
}

// TestStreamChromeExport pins the exporter/validator pair on the stream
// schema: gauges export as "C" counter events, instants and spans share
// per-node tracks in timestamp order, and everything passes the vocabulary
// and monotonicity gates.
func TestStreamChromeExport(t *testing.T) {
	tr := NewTrace()
	tr.Add(streamCollector("streamed run"))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("stream trace rejected by validator: %v\n%s", err, buf.String())
	}
	if stats.Streams != 11 {
		t.Fatalf("stats.Streams = %d, want 11", stats.Streams)
	}
	if stats.Cats[string(LayerStream)] != 11 {
		t.Fatalf("stream category count = %d, want 11 (cats: %v)", stats.Cats[string(LayerStream)], stats.Cats)
	}
	if !strings.Contains(buf.String(), `"ph":"C"`) {
		t.Fatal("gauges did not export as Chrome counter events")
	}
}

// TestValidateChromeRejectsUnknownStreamKind: the vocabulary gate — a
// stream-category event whose name does not start with a known kind fails
// validation, while the same name outside the stream category is fine.
func TestValidateChromeRejectsUnknownStreamKind(t *testing.T) {
	bad := `{"traceEvents":[{"name":"firehose open","cat":"stream","ph":"i","ts":1,"pid":1,"tid":1}]}`
	_, err := ValidateChrome([]byte(bad))
	if err == nil {
		t.Fatal("unknown stream kind accepted")
	}
	if !strings.Contains(err.Error(), "unknown stream kind") {
		t.Fatalf("error does not name the failure: %v", err)
	}
	ok := `{"traceEvents":[{"name":"firehose open","cat":"sagert","ph":"i","ts":1,"pid":1,"tid":1}]}`
	if _, err := ValidateChrome([]byte(ok)); err != nil {
		t.Fatalf("non-stream category wrongly gated by stream vocabulary: %v", err)
	}
	detailed := `{"traceEvents":[{"name":"qdepth fft_matrix#2","cat":"stream","ph":"C","ts":1,"pid":1,"tid":1}]}`
	if _, err := ValidateChrome([]byte(detailed)); err != nil {
		t.Fatalf("detailed stream gauge rejected: %v", err)
	}
}

// TestSummaryIncludesStream: the text summary surfaces per-kind stream event
// counts.
func TestSummaryIncludesStream(t *testing.T) {
	tr := NewTrace()
	tr.Add(streamCollector("streamed run"))
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"stream:", "admit x1", "backlog x2", "migrate x1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
