package trace

// Sharded-kernel support: the Collector implements sim.ShardTracer so one
// collector can observe a conservative sharded run (sim.Kernel.SetShards)
// and still produce output byte-identical to the sequential run's.
//
// Mechanics: at run start the parent collector hands the kernel one child
// collector per shard; kernel hooks fire on the children (one executing
// goroutine per shard, so children stay lock-free), and node-keyed
// recording calls from the layers above (machine, mpi, sagert, fault) are
// routed by the parent to the child owning the node — which is always the
// shard the calling process executes on, so each child remains
// single-writer. Every child record is tagged with the shard's current
// dispatch-log index; at each window barrier the kernel supplies the exact
// sequential interleaving of the window's dispatches (sim.ShardDispatch)
// and WindowEnd drains the children into the parent in that order. The
// spans, instants and gauges streams merge independently — they are
// separate slices with no observable cross-ordering. Counter maps (links,
// waits, collectives, faults, streams) are order-independent sums and fold
// into the parent once, at RunEnd.

import (
	"fmt"

	"repro/internal/sim"
)

// shardState is the per-child tagging state: the kernel's dispatch cursor
// for the child's shard, one tag per recorded span/instant/gauge (the
// dispatch-log index current when the record was appended), and the merge
// cursors WindowEnd uses to drain the window's records in order.
type shardState struct {
	cursor   *uint64
	spanTag  []uint64
	instTag  []uint64
	gaugeTag []uint64
	spanCur  int
	instCur  int
	gaugeCur int
}

// route returns the collector that must record an event owned by node: the
// per-shard child during a sharded run, c itself otherwise.
func (c *Collector) route(node int) *Collector {
	return c.children[c.kernel.ShardOf(node)]
}

// addSpan appends a span, tagging it with the current dispatch when the
// collector is a sharded child.
func (c *Collector) addSpan(s Span) {
	c.spans = append(c.spans, s)
	if c.shard != nil {
		c.shard.spanTag = append(c.shard.spanTag, *c.shard.cursor)
	}
}

func (c *Collector) addInstant(i Instant) {
	c.instants = append(c.instants, i)
	if c.shard != nil {
		c.shard.instTag = append(c.shard.instTag, *c.shard.cursor)
	}
}

func (c *Collector) addGauge(g Gauge) {
	c.gauges = append(c.gauges, g)
	if c.shard != nil {
		c.shard.gaugeTag = append(c.shard.gaugeTag, *c.shard.cursor)
	}
}

// ShardStart implements sim.ShardTracer: create one child collector per
// shard and activate parent-side routing.
func (c *Collector) ShardStart(k *sim.Kernel, nshards int) []sim.Tracer {
	c.kernel = k
	c.children = make([]*Collector, nshards)
	out := make([]sim.Tracer, nshards)
	for i := 0; i < nshards; i++ {
		ch := New(c.Label)
		ch.Verbose = c.Verbose
		ch.shard = &shardState{cursor: k.ShardCursor(i)}
		c.children[i] = ch
		out[i] = ch
	}
	return out
}

// WindowEnd implements sim.ShardTracer: drain the children's window
// records into the parent in the exact sequential dispatch order, then
// reset the children's window buffers. Called single-threaded at the
// window barrier.
func (c *Collector) WindowEnd(order []sim.ShardDispatch) {
	for _, d := range order {
		ch := c.children[d.Shard]
		st := ch.shard
		di := uint64(d.Index)
		for st.spanCur < len(ch.spans) && st.spanTag[st.spanCur] == di {
			c.spans = append(c.spans, ch.spans[st.spanCur])
			st.spanCur++
		}
		for st.instCur < len(ch.instants) && st.instTag[st.instCur] == di {
			c.instants = append(c.instants, ch.instants[st.instCur])
			st.instCur++
		}
		for st.gaugeCur < len(ch.gauges) && st.gaugeTag[st.gaugeCur] == di {
			c.gauges = append(c.gauges, ch.gauges[st.gaugeCur])
			st.gaugeCur++
		}
	}
	for i, ch := range c.children {
		st := ch.shard
		if st.spanCur != len(ch.spans) || st.instCur != len(ch.instants) || st.gaugeCur != len(ch.gauges) {
			panic(fmt.Sprintf("trace: shard %d window left %d/%d/%d unmerged records",
				i, len(ch.spans)-st.spanCur, len(ch.instants)-st.instCur, len(ch.gauges)-st.gaugeCur))
		}
		ch.spans = ch.spans[:0]
		ch.instants = ch.instants[:0]
		ch.gauges = ch.gauges[:0]
		st.spanTag = st.spanTag[:0]
		st.instTag = st.instTag[:0]
		st.gaugeTag = st.gaugeTag[:0]
		st.spanCur, st.instCur, st.gaugeCur = 0, 0, 0
	}
}

// RunEnd implements sim.ShardTracer: fold the children's counter state
// into the parent and deactivate routing, so post-run recording (teardown
// ProcEnd hooks, node totals, Finish) lands on the parent directly.
// Per-shard counter maps merge in shard order; every exported view sorts
// its keys, so the merged output is independent of that order anyway.
func (c *Collector) RunEnd() {
	for _, ch := range c.children {
		for k, v := range ch.links {
			lt := c.links[k]
			if lt == nil {
				lt = &LinkTotals{}
				c.links[k] = lt
			}
			lt.Msgs += v.Msgs
			lt.Bytes += v.Bytes
		}
		for k, v := range ch.waits {
			wt := c.waits[k]
			if wt == nil {
				wt = &WaitTotals{}
				c.waits[k] = wt
			}
			wt.Count += v.Count
			wt.Total += v.Total
		}
		for k, v := range ch.collectives {
			c.collectives[k] += v
		}
		for k, v := range ch.faults {
			c.faults[k] += v
		}
		for k, v := range ch.streams {
			c.streams[k] += v
		}
		// A process still live at run end (deadlock, stop) started on
		// exactly one shard; move its start time up so the parent's
		// teardown ProcEnd hook can emit the lifetime span.
		for pid, t := range ch.procStart {
			c.procStart[pid] = t
		}
		c.nodes = append(c.nodes, ch.nodes...)
	}
	c.children = nil
	c.kernel = nil
}
