package trace

import (
	"bytes"
	"strings"
	"testing"
)

// faultCollector covers every fault-event entry point: injector instants
// (drop, down), node-level spans (stall, giveup), thread-level recovery spans
// and a retry episode — all mixed with a regular sagert span so the fault
// track coexists with normal tracks.
func faultCollector(label string) *Collector {
	c := New(label)
	c.ProcStart(1, "worker", 0)
	c.Phase(LayerSage, 0, ProcTrack("worker", 1), "recv", 0, ms(1), ms(2))
	c.FaultPoint(0, "drop link 0->1", ms(1))
	c.FaultPoint(0, "down link 0->2", ms(2))
	c.FaultPoint(0, "drop link 0->1", ms(3))
	c.FaultSpan(1, "stall node 1", ms(1), ms(4))
	c.FaultSpan(0, "giveup 0->1", ms(4), ms(5))
	c.FaultSpan(0, "retry 0->1 x3", ms(2), ms(4))
	c.FaultSpanOn(0, ProcTrack("worker", 1), "recv-timeout b0 t1", ms(2), ms(3))
	c.ProcEnd(1, "worker", ms(8))
	c.elapsed = ms(8)
	return c
}

// TestFaultCounts pins the Faults() accounting: every FaultPoint/FaultSpan
// counts once under its first name token, and the result is sorted by kind.
func TestFaultCounts(t *testing.T) {
	c := faultCollector("f")
	want := map[string]int{
		"drop": 2, "down": 1, "stall": 1, "giveup": 1, "retry": 1, "recv-timeout": 1,
	}
	got := c.Faults()
	if len(got) != len(want) {
		t.Fatalf("got %d fault kinds, want %d: %+v", len(got), len(want), got)
	}
	for i, f := range got {
		if want[f.Kind] != f.Count {
			t.Errorf("kind %q: count %d, want %d", f.Kind, f.Count, want[f.Kind])
		}
		if i > 0 && got[i-1].Kind >= f.Kind {
			t.Errorf("kinds not sorted: %q before %q", got[i-1].Kind, f.Kind)
		}
	}
	// Every kind the collector can emit is in the validator's vocabulary.
	for _, f := range got {
		if !FaultKinds[f.Kind] {
			t.Errorf("collector emitted kind %q outside FaultKinds", f.Kind)
		}
	}
}

// TestNilCollectorFaultMethods extends the nil-safety contract to the fault
// entry points.
func TestNilCollectorFaultMethods(t *testing.T) {
	var c *Collector
	c.FaultPoint(0, "drop x", 0)
	c.FaultSpan(0, "stall", 0, 1)
	c.FaultSpanOn(0, "t", "retry x", 0, 1)
	if c.Faults() != nil {
		t.Fatal("nil collector returned fault counts")
	}
}

// TestFaultChromeExport pins the exporter/validator pair on the fault schema:
// fault spans and fault instants share the per-node fault track, so the
// export must interleave them in timestamp order, tag them with the fault
// category, and pass the stream-monotonicity gate.
func TestFaultChromeExport(t *testing.T) {
	tr := NewTrace()
	tr.Add(faultCollector("faulted run"))
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	stats, err := ValidateChrome(buf.Bytes())
	if err != nil {
		t.Fatalf("fault trace rejected by validator: %v\n%s", err, buf.String())
	}
	if stats.Faults != 7 {
		t.Fatalf("stats.Faults = %d, want 7", stats.Faults)
	}
	if stats.Cats[string(LayerFault)] != 7 {
		t.Fatalf("fault category count = %d, want 7 (cats: %v)", stats.Cats[string(LayerFault)], stats.Cats)
	}
	if !strings.Contains(buf.String(), FaultTrack) {
		t.Fatal("export lost the fault track name")
	}
}

// TestValidateChromeRejectsUnknownFaultKind: the vocabulary gate — a
// fault-category event whose name does not start with a known kind fails
// validation, while the same name outside the fault category is fine.
func TestValidateChromeRejectsUnknownFaultKind(t *testing.T) {
	bad := `{"traceEvents":[{"name":"gremlin attack","cat":"fault","ph":"i","ts":1,"pid":1,"tid":1}]}`
	_, err := ValidateChrome([]byte(bad))
	if err == nil {
		t.Fatal("unknown fault kind accepted")
	}
	if !strings.Contains(err.Error(), "unknown fault kind") {
		t.Fatalf("error does not name the failure: %v", err)
	}
	ok := `{"traceEvents":[{"name":"gremlin attack","cat":"sagert","ph":"i","ts":1,"pid":1,"tid":1}]}`
	if _, err := ValidateChrome([]byte(ok)); err != nil {
		t.Fatalf("non-fault category wrongly gated by fault vocabulary: %v", err)
	}
	// Kind extraction uses the first token only: a known kind with detail
	// after the space passes.
	detailed := `{"traceEvents":[{"name":"credit-timeout b3","cat":"fault","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}]}`
	if _, err := ValidateChrome([]byte(detailed)); err != nil {
		t.Fatalf("detailed fault name rejected: %v", err)
	}
}

// TestSummaryIncludesFaults: the text summary surfaces per-kind fault counts.
func TestSummaryIncludesFaults(t *testing.T) {
	tr := NewTrace()
	tr.Add(faultCollector("faulted run"))
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"faults:", "drop x2", "stall x1", "recv-timeout x1"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}
