// Package trace is the kernel-level observability layer of the reproduction:
// a structured event collector wired into the simulation kernel
// (internal/sim), the machine model (internal/machine), the MPI substrate
// (internal/mpi), the SAGE runtime (internal/sagert) and the hand-coded
// baselines (internal/handcoded). The paper's SAGE run-time made its
// sequencing, striping and buffer-management decisions observable enough to
// compare glue code against hand-coded MPI phase by phase; this package is
// that instrument for the reproduction.
//
// A Collector belongs to exactly one simulation kernel and therefore to one
// goroutine (the one running sim.Kernel.Run); it needs no locking. Under the
// parallel experiment engine every concurrent run records into its own
// Collector, and the per-run collectors are merged into a Trace in sweep
// order after the pool drains, so traced output is deterministic at any
// Parallelism setting. A nil *Collector is valid and records nothing; every
// recording method is nil-safe, which is what makes instrumentation
// zero-overhead when tracing is disabled (call sites guard the argument
// construction with Enabled()).
//
// All timestamps are virtual time from the owning kernel. Tracing only
// observes — it never sleeps, sends or acquires — so enabling it cannot
// change any simulated result.
//
// Exporters emit the Chrome trace-event JSON format (loadable in
// chrome://tracing or Perfetto; see WriteChrome) and a per-run text summary
// table (WriteSummary). The event model, counter semantics and the
// Chrome-trace mapping are documented in DESIGN.md.
package trace

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/sim"
)

// Layer identifies the subsystem that emitted an event; it becomes the
// Chrome trace "cat" field.
type Layer string

const (
	// LayerSim marks kernel-level events: process lifetimes and blocking
	// waits (channel receive, resource acquisition, barriers).
	LayerSim Layer = "sim"
	// LayerMachine marks hardware-model events: per-link transfers.
	LayerMachine Layer = "machine"
	// LayerMPI marks collective phase spans, tagged with the algorithm.
	LayerMPI Layer = "mpi"
	// LayerSage marks SAGE runtime events: per-thread function phases,
	// port-striping transfers and buffer credit flow.
	LayerSage Layer = "sagert"
	// LayerHand marks hand-coded baseline phases.
	LayerHand Layer = "handcoded"
	// LayerFault marks fault-injection and recovery events: injected drops,
	// link outages and node stalls (from internal/fault), and the retry,
	// timeout and degraded-mode recovery behaviour of the runtimes.
	LayerFault Layer = "fault"
	// LayerStream marks streaming-workload events from internal/stream: frame
	// admission and shedding, backpressure gauges (backlog, per-stage queue
	// depth, credit starvation) and the quiesce/drain/remap/resume protocol
	// of the mid-run remapping controller.
	LayerStream Layer = "stream"
)

// FaultTrack is the per-node track fault-injection events land on when they
// are not attributable to a specific simulated thread.
const FaultTrack = "faults"

// FaultKinds enumerates the legal first tokens of fault-layer event names;
// ValidateChrome rejects fault events outside this vocabulary. Injection
// kinds (drop, down, stall) come from the injector; recovery kinds (retry,
// giveup, recv-timeout, credit-timeout, overcommit) from the runtimes.
var FaultKinds = map[string]bool{
	"drop":           true,
	"down":           true,
	"stall":          true,
	"retry":          true,
	"giveup":         true,
	"recv-timeout":   true,
	"credit-timeout": true,
	"overcommit":     true,
}

// StreamTrack is the per-node track stream-layer events land on when they are
// not attributable to a specific simulated thread (source admission, the
// remap controller).
const StreamTrack = "stream"

// StreamKinds enumerates the legal first tokens of stream-layer event names;
// ValidateChrome rejects stream events outside this vocabulary, exactly as
// FaultKinds gates the fault layer. Workload kinds (admit, shed, frame, late,
// eos) come from the stream runner's source and sink; backpressure gauges
// (backlog, qdepth, credit-stall) from every stage; the remaining kinds from
// the remapping controller's quiesce-drain-remap-resume protocol.
var StreamKinds = map[string]bool{
	"admit":        true,
	"shed":         true,
	"frame":        true,
	"late":         true,
	"eos":          true,
	"backlog":      true,
	"qdepth":       true,
	"credit-stall": true,
	"quiesce":      true,
	"drain":        true,
	"remap":        true,
	"migrate":      true,
	"resume":       true,
}

// NodeKernel is the pseudo-node owning events that are not attributable to a
// machine node (the simulation kernel's own bookkeeping).
const NodeKernel = -1

// Span is one completed interval on a named track. Optional fields use -1
// for "absent" so exporters can omit them.
type Span struct {
	Layer Layer
	Node  int    // owning machine node, or NodeKernel
	Track string // thread-level track within the node (see ProcTrack)
	Name  string
	Start sim.Time
	End   sim.Time
	Bytes int64 // payload bytes, or -1
	Iter  int   // iteration index, or -1
	Depth int   // queue depth observed when a wait began, or -1
}

// Instant is a zero-duration event, recorded only in Verbose mode (channel
// and resource operations are too frequent for default traces).
type Instant struct {
	Layer Layer
	Node  int
	Track string
	Name  string
	At    sim.Time
	Value int // post-operation queue length / units in use
}

// Gauge is one sample of a named time-series counter (a backpressure metric:
// queue depth, backlog, outstanding credits). Gauges export as Chrome "C"
// counter events, which the trace viewers render as stacked area charts.
type Gauge struct {
	Layer Layer
	Node  int
	Track string
	Name  string
	At    sim.Time
	Value int
}

// NodeTotals are the end-of-run counters for one machine node. Idle time is
// derived: Elapsed() minus the busy components.
type NodeTotals struct {
	Node        int
	ComputeBusy sim.Duration
	CopyBusy    sim.Duration
	CommBusy    sim.Duration
	MsgsSent    int
	BytesSent   int64
}

// LinkKey identifies a directed node pair.
type LinkKey struct{ Src, Dst int }

// LinkTotals accumulate traffic per directed link.
type LinkTotals struct {
	Msgs  int
	Bytes int64
}

// WaitTotals accumulate contention per wait key ("kind object").
type WaitTotals struct {
	Count int
	Total sim.Duration
}

// ProcTrack names the per-process track used by every layer, so phase spans
// (sagert), collective spans (mpi) and blocking waits (sim) of one simulated
// thread can share one timeline row. PIDs are unique per kernel, which keeps
// tracks unique even when processes share a name.
func ProcTrack(name string, pid int) string {
	return fmt.Sprintf("%s #%d", name, pid)
}

// Collector accumulates the event stream and counters of one simulation run.
// The zero value is not used; create collectors with New. A nil *Collector
// is the disabled collector: every method is a no-op and Enabled reports
// false.
type Collector struct {
	// Label identifies the run in merged traces and summaries.
	Label string
	// Verbose additionally records per-operation channel and resource
	// instants, which can enlarge traces by orders of magnitude.
	Verbose bool

	spans       []Span
	instants    []Instant
	gauges      []Gauge
	nodes       []NodeTotals
	links       map[LinkKey]*LinkTotals
	waits       map[string]*WaitTotals
	collectives map[string]int
	faults      map[string]int
	streams     map[string]int
	procStart   map[int]sim.Time
	dispatched  uint64
	elapsed     sim.Time

	// Sharded-kernel state (see shard.go). On a parent, children/kernel
	// route node-keyed recording to per-shard child collectors during the
	// run; on a child, shard tags every record with the dispatch that
	// emitted it so WindowEnd can merge in exact sequential order.
	children []*Collector
	kernel   *sim.Kernel
	shard    *shardState
}

// New returns an empty collector for one simulation run.
func New(label string) *Collector {
	return &Collector{
		Label:       label,
		links:       map[LinkKey]*LinkTotals{},
		waits:       map[string]*WaitTotals{},
		collectives: map[string]int{},
		faults:      map[string]int{},
		streams:     map[string]int{},
		procStart:   map[int]sim.Time{},
	}
}

// Enabled reports whether events should be recorded (and, at call sites,
// whether it is worth building their arguments).
func (c *Collector) Enabled() bool { return c != nil }

// Span records a completed interval with no optional fields.
func (c *Collector) Span(layer Layer, node int, track, name string, start, end sim.Time) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(node).Span(layer, node, track, name, start, end)
		return
	}
	c.addSpan(Span{Layer: layer, Node: node, Track: track, Name: name,
		Start: start, End: end, Bytes: -1, Iter: -1, Depth: -1})
}

// Phase records an iteration-tagged runtime phase (recv/compute/send,
// scatter/gather, ...).
func (c *Collector) Phase(layer Layer, node int, track, name string, iter int, start, end sim.Time) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(node).Phase(layer, node, track, name, iter, start, end)
		return
	}
	c.addSpan(Span{Layer: layer, Node: node, Track: track, Name: name,
		Start: start, End: end, Bytes: -1, Iter: iter, Depth: -1})
}

// Xfer records a data-movement span with its payload size.
func (c *Collector) Xfer(layer Layer, node int, track, name string, bytes int, iter int, start, end sim.Time) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(node).Xfer(layer, node, track, name, bytes, iter, start, end)
		return
	}
	c.addSpan(Span{Layer: layer, Node: node, Track: track, Name: name,
		Start: start, End: end, Bytes: int64(bytes), Iter: iter, Depth: -1})
}

// Collective records one MPI collective phase (name carries the algorithm,
// e.g. "alltoall[bruck]") and counts it for the summary.
func (c *Collector) Collective(node int, track, name string, start, end sim.Time) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(node).Collective(node, track, name, start, end)
		return
	}
	c.collectives[name]++
	c.addSpan(Span{Layer: LayerMPI, Node: node, Track: track, Name: name,
		Start: start, End: end, Bytes: -1, Iter: -1, Depth: -1})
}

// eventKind extracts the event-kind vocabulary token (everything before the
// first space) from a fault event name.
func eventKind(name string) string {
	if i := strings.IndexByte(name, ' '); i > 0 {
		return name[:i]
	}
	return name
}

// FaultPoint records an instantaneous fault-injection event (a dropped
// message, a refused attempt on a downed link) on the owning node's fault
// track. The name's first token must come from FaultKinds; unlike the
// verbose channel/resource instants, fault points are always recorded.
func (c *Collector) FaultPoint(node int, name string, at sim.Time) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(node).FaultPoint(node, name, at)
		return
	}
	c.faults[eventKind(name)]++
	c.addInstant(Instant{Layer: LayerFault, Node: node,
		Track: FaultTrack, Name: name, At: at})
}

// FaultSpan records a fault or recovery interval — a node stall window, a
// retry-with-backoff episode, a timeout re-arm — on the given track (use
// FaultTrack for node-level events, ProcTrack for thread-level recovery).
// The name's first token must come from FaultKinds.
func (c *Collector) FaultSpan(node int, name string, start, end sim.Time) {
	c.FaultSpanOn(node, FaultTrack, name, start, end)
}

// FaultSpanOn is FaultSpan with an explicit track, so recovery spans can sit
// on the affected thread's own timeline row.
func (c *Collector) FaultSpanOn(node int, track, name string, start, end sim.Time) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(node).FaultSpanOn(node, track, name, start, end)
		return
	}
	c.faults[eventKind(name)]++
	c.addSpan(Span{Layer: LayerFault, Node: node, Track: track,
		Name: name, Start: start, End: end, Bytes: -1, Iter: -1, Depth: -1})
}

// Faults returns per-kind injected/recovery event counts in kind order.
func (c *Collector) Faults() []struct {
	Kind  string
	Count int
} {
	if c == nil {
		return nil
	}
	kinds := make([]string, 0, len(c.faults))
	for k := range c.faults {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]struct {
		Kind  string
		Count int
	}, len(kinds))
	for i, k := range kinds {
		out[i].Kind = k
		out[i].Count = c.faults[k]
	}
	return out
}

// StreamPoint records an instantaneous stream-workload event (a frame
// admission, a shed decision, an SLO violation) on the owning node's stream
// track. The name's first token must come from StreamKinds; like fault
// points, stream points are always recorded.
func (c *Collector) StreamPoint(node int, name string, at sim.Time) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(node).StreamPoint(node, name, at)
		return
	}
	c.streams[eventKind(name)]++
	c.addInstant(Instant{Layer: LayerStream, Node: node,
		Track: StreamTrack, Name: name, At: at})
}

// StreamSpan records a stream-protocol interval — a quiesce/drain window, a
// thread migration, a credit-starvation stall — on the given track (use
// StreamTrack for controller-level events, ProcTrack for per-thread ones).
// The name's first token must come from StreamKinds.
func (c *Collector) StreamSpan(node int, track, name string, start, end sim.Time) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(node).StreamSpan(node, track, name, start, end)
		return
	}
	c.streams[eventKind(name)]++
	c.addSpan(Span{Layer: LayerStream, Node: node, Track: track,
		Name: name, Start: start, End: end, Bytes: -1, Iter: -1, Depth: -1})
}

// StreamGauge samples a named backpressure counter (backlog, per-stage queue
// depth, outstanding credits) on the given track. Gauges export as Chrome
// "C" counter events. The name's first token must come from StreamKinds.
func (c *Collector) StreamGauge(node int, track, name string, value int, at sim.Time) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(node).StreamGauge(node, track, name, value, at)
		return
	}
	c.streams[eventKind(name)]++
	c.addGauge(Gauge{Layer: LayerStream, Node: node, Track: track,
		Name: name, At: at, Value: value})
}

// Streams returns per-kind stream event counts in kind order.
func (c *Collector) Streams() []struct {
	Kind  string
	Count int
} {
	if c == nil {
		return nil
	}
	kinds := make([]string, 0, len(c.streams))
	for k := range c.streams {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	out := make([]struct {
		Kind  string
		Count int
	}, len(kinds))
	for i, k := range kinds {
		out[i].Kind = k
		out[i].Count = c.streams[k]
	}
	return out
}

// Gauges returns the recorded counter samples in recording order.
func (c *Collector) Gauges() []Gauge {
	if c == nil {
		return nil
	}
	return c.gauges
}

// LinkTransfer accumulates per-link traffic counters (called by the machine
// model for every message, including self-transfers).
func (c *Collector) LinkTransfer(src, dst, bytes int) {
	if c == nil {
		return
	}
	if c.children != nil {
		// The sender's process executes on src's shard.
		c.route(src).LinkTransfer(src, dst, bytes)
		return
	}
	lt := c.links[LinkKey{src, dst}]
	if lt == nil {
		lt = &LinkTotals{}
		c.links[LinkKey{src, dst}] = lt
	}
	lt.Msgs++
	lt.Bytes += int64(bytes)
}

// AddNodeTotals records a node's end-of-run counters.
func (c *Collector) AddNodeTotals(nt NodeTotals) {
	if c == nil {
		return
	}
	if c.children != nil {
		c.route(nt.Node).AddNodeTotals(nt)
		return
	}
	c.nodes = append(c.nodes, nt)
}

// Finish stamps the run's final virtual time and kernel event count, read
// through the kernel's accessors (see the sim package's trace hook
// contract).
func (c *Collector) Finish(k *sim.Kernel) {
	if c == nil {
		return
	}
	c.elapsed = k.Now()
	c.dispatched = k.Dispatched()
}

// Elapsed reports the final virtual time recorded by Finish.
func (c *Collector) Elapsed() sim.Time { return c.elapsed }

// Dispatched reports the kernel event count recorded by Finish.
func (c *Collector) Dispatched() uint64 { return c.dispatched }

// Spans returns the recorded spans in recording order (completion order).
func (c *Collector) Spans() []Span {
	if c == nil {
		return nil
	}
	return c.spans
}

// Nodes returns the recorded per-node totals.
func (c *Collector) Nodes() []NodeTotals {
	if c == nil {
		return nil
	}
	return c.nodes
}

// Links returns the per-link totals in (src, dst) order.
func (c *Collector) Links() []struct {
	LinkKey
	LinkTotals
} {
	if c == nil {
		return nil
	}
	keys := make([]LinkKey, 0, len(c.links))
	for k := range c.links {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
	out := make([]struct {
		LinkKey
		LinkTotals
	}, len(keys))
	for i, k := range keys {
		out[i].LinkKey = k
		out[i].LinkTotals = *c.links[k]
	}
	return out
}

// Waits returns the contention totals keyed by "kind object", sorted by
// total wait time descending (ties by key).
func (c *Collector) Waits() []struct {
	Key string
	WaitTotals
} {
	if c == nil {
		return nil
	}
	keys := make([]string, 0, len(c.waits))
	for k := range c.waits {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := c.waits[keys[i]], c.waits[keys[j]]
		if a.Total != b.Total {
			return a.Total > b.Total
		}
		return keys[i] < keys[j]
	})
	out := make([]struct {
		Key string
		WaitTotals
	}, len(keys))
	for i, k := range keys {
		out[i].Key = k
		out[i].WaitTotals = *c.waits[k]
	}
	return out
}

// Collectives returns per-collective counts in name order.
func (c *Collector) Collectives() []struct {
	Name  string
	Count int
} {
	if c == nil {
		return nil
	}
	names := make([]string, 0, len(c.collectives))
	for n := range c.collectives {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]struct {
		Name  string
		Count int
	}, len(names))
	for i, n := range names {
		out[i].Name = n
		out[i].Count = c.collectives[n]
	}
	return out
}

// --- sim.Tracer implementation ----------------------------------------------
//
// The Collector is the standard implementation of the sim package's Tracer
// interface; Machine.SetTrace installs it on the kernel.

// ProcStart implements sim.Tracer: remember when the process began so
// ProcEnd can emit its lifetime span.
func (c *Collector) ProcStart(pid int, name string, at sim.Time) {
	if c == nil {
		return
	}
	c.procStart[pid] = at
}

// ProcEnd implements sim.Tracer: emit the process lifetime span.
func (c *Collector) ProcEnd(pid int, name string, at sim.Time) {
	if c == nil {
		return
	}
	start, ok := c.procStart[pid]
	if !ok {
		start = at
	}
	delete(c.procStart, pid)
	c.addSpan(Span{Layer: LayerSim, Node: NodeKernel,
		Track: ProcTrack(name, pid), Name: "proc " + name,
		Start: start, End: at, Bytes: -1, Iter: -1, Depth: -1})
}

// Wait implements sim.Tracer: a process blocked from from to to on a channel
// receive ("recv"), resource acquisition ("acquire") or barrier ("barrier").
// Every wait feeds the contention counters; waits also become spans, except
// resource-acquisition waits in non-Verbose mode (CPU time-sharing makes
// them frequent; their totals remain in the counters).
func (c *Collector) Wait(pid int, proc, kind, object string, from, to sim.Time, queueDepth int) {
	if c == nil {
		return
	}
	// Counter keys drop per-message detail such as "(src=3,tag=7)" so the
	// totals aggregate per object, not per endpoint pair; spans keep the
	// full name.
	counterObj := object
	if i := strings.IndexByte(counterObj, '('); i > 0 {
		counterObj = counterObj[:i]
	}
	key := kind + " " + counterObj
	wt := c.waits[key]
	if wt == nil {
		wt = &WaitTotals{}
		c.waits[key] = wt
	}
	wt.Count++
	wt.Total += to.Sub(from)
	if kind == "acquire" && !c.Verbose {
		return
	}
	c.addSpan(Span{Layer: LayerSim, Node: NodeKernel,
		Track: ProcTrack(proc, pid), Name: "wait:" + kind + " " + object,
		Start: from, End: to, Bytes: -1, Iter: -1, Depth: queueDepth})
}

// ChanOp implements sim.Tracer: per-operation mailbox instants, Verbose
// only.
func (c *Collector) ChanOp(op, name string, qlen int, at sim.Time) {
	if c == nil || !c.Verbose {
		return
	}
	c.addInstant(Instant{Layer: LayerSim, Node: NodeKernel,
		Track: "chan " + name, Name: op, At: at, Value: qlen})
}

// ResourceOp implements sim.Tracer: per-operation resource instants, Verbose
// only.
func (c *Collector) ResourceOp(op, name string, inUse, capacity, queued int, at sim.Time) {
	if c == nil || !c.Verbose {
		return
	}
	c.addInstant(Instant{Layer: LayerSim, Node: NodeKernel,
		Track: "res " + name, Name: fmt.Sprintf("%s %d/%d", op, inUse, capacity), At: at, Value: queued})
}

// --- merged multi-run trace --------------------------------------------------

// Trace is an ordered collection of per-run collectors: the unit the
// exporters consume. Add must be called from a single goroutine — the
// experiment drivers append collectors in sweep order after their worker
// pool has drained, which keeps merged output deterministic at any
// parallelism.
type Trace struct {
	runs []*Collector
}

// NewTrace returns an empty merged trace.
func NewTrace() *Trace { return &Trace{} }

// Add appends one run's collector. Nil collectors are ignored.
func (t *Trace) Add(c *Collector) {
	if t == nil || c == nil {
		return
	}
	t.runs = append(t.runs, c)
}

// Runs returns the collectors in merge order.
func (t *Trace) Runs() []*Collector {
	if t == nil {
		return nil
	}
	return t.runs
}
