package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// ChromeStats summarises a validated Chrome trace-event file.
type ChromeStats struct {
	Events  int            // non-metadata events
	Spans   int            // ph "X" events
	Faults  int            // events in the "fault" category
	Streams int            // events in the "stream" category
	Cats    map[string]int // events per category (layer)
}

// Layers returns the categories present, sorted.
func (s *ChromeStats) Layers() []string {
	out := make([]string, 0, len(s.Cats))
	for c := range s.Cats {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// rawChromeEvent mirrors the subset of trace-event fields the validator
// checks.
type rawChromeEvent struct {
	Name *string  `json:"name"`
	Cat  string   `json:"cat"`
	Ph   string   `json:"ph"`
	Ts   *float64 `json:"ts"`
	Dur  float64  `json:"dur"`
	Pid  *int     `json:"pid"`
	Tid  *int     `json:"tid"`
}

// ValidateChrome checks that data is a well-formed Chrome trace-event JSON
// object as emitted by WriteChrome: a traceEvents array whose entries carry
// name/ph/pid/tid, a known phase, non-negative timestamps and durations, and
// — per (pid, tid) track — monotonically non-decreasing timestamps. Events
// in the "fault" category must additionally use the FaultKinds vocabulary as
// the first token of their name (the fault/retry schema extension), and
// events in the "stream" category the StreamKinds vocabulary (the
// streaming-workload schema extension). It
// returns per-category statistics on success. This is the schema gate CI
// runs against sage-bench -trace output.
func ValidateChrome(data []byte) (*ChromeStats, error) {
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, fmt.Errorf("trace: not a JSON trace object: %w", err)
	}
	if doc.TraceEvents == nil {
		return nil, fmt.Errorf("trace: missing traceEvents array")
	}
	known := map[string]bool{"X": true, "i": true, "C": true, "M": true, "B": true, "E": true}
	lastTs := map[[2]int]float64{}
	stats := &ChromeStats{Cats: map[string]int{}}
	for i, raw := range doc.TraceEvents {
		var ev rawChromeEvent
		if err := json.Unmarshal(raw, &ev); err != nil {
			return nil, fmt.Errorf("trace: event %d: %w", i, err)
		}
		if ev.Name == nil || *ev.Name == "" {
			return nil, fmt.Errorf("trace: event %d has no name", i)
		}
		if !known[ev.Ph] {
			return nil, fmt.Errorf("trace: event %d (%s) has unknown phase %q", i, *ev.Name, ev.Ph)
		}
		if ev.Cat == string(LayerFault) {
			kind := *ev.Name
			if j := strings.IndexByte(kind, ' '); j > 0 {
				kind = kind[:j]
			}
			if !FaultKinds[kind] {
				return nil, fmt.Errorf("trace: event %d (%s) uses unknown fault kind %q", i, *ev.Name, kind)
			}
		}
		if ev.Cat == string(LayerStream) {
			kind := *ev.Name
			if j := strings.IndexByte(kind, ' '); j > 0 {
				kind = kind[:j]
			}
			if !StreamKinds[kind] {
				return nil, fmt.Errorf("trace: event %d (%s) uses unknown stream kind %q", i, *ev.Name, kind)
			}
		}
		if ev.Pid == nil || ev.Tid == nil {
			return nil, fmt.Errorf("trace: event %d (%s) lacks pid/tid", i, *ev.Name)
		}
		if ev.Ph == "M" {
			continue // metadata carries no timestamp
		}
		if ev.Ts == nil || *ev.Ts < 0 {
			return nil, fmt.Errorf("trace: event %d (%s) has missing or negative ts", i, *ev.Name)
		}
		if ev.Dur < 0 {
			return nil, fmt.Errorf("trace: event %d (%s) has negative dur %v", i, *ev.Name, ev.Dur)
		}
		track := [2]int{*ev.Pid, *ev.Tid}
		if last, ok := lastTs[track]; ok && *ev.Ts < last {
			return nil, fmt.Errorf("trace: event %d (%s) breaks per-track monotonicity: ts %v after %v on pid=%d tid=%d",
				i, *ev.Name, *ev.Ts, last, *ev.Pid, *ev.Tid)
		}
		lastTs[track] = *ev.Ts
		stats.Events++
		if ev.Ph == "X" {
			stats.Spans++
		}
		if ev.Cat == string(LayerFault) {
			stats.Faults++
		}
		if ev.Cat == string(LayerStream) {
			stats.Streams++
		}
		stats.Cats[ev.Cat]++
	}
	if stats.Events == 0 {
		return nil, fmt.Errorf("trace: traceEvents contains no timed events")
	}
	return stats, nil
}
