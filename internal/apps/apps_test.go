package apps

import (
	"strings"
	"testing"

	"repro/internal/funclib"
	"repro/internal/model"
)

func TestBuildersProduceValidModels(t *testing.T) {
	builders := map[string]func(n, threads int) (*model.App, error){
		"fft2d":      FFT2D,
		"cornerturn": CornerTurn,
		"stap":       STAP,
	}
	for name, build := range builders {
		for _, threads := range []int{1, 3, 8} {
			app, err := build(256, threads)
			if err != nil {
				t.Fatalf("%s threads=%d: %v", name, threads, err)
			}
			if err := app.Validate(); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if err := funclib.ValidateApp(app); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			if len(app.Sources()) != 1 || len(app.Sinks()) != 1 {
				t.Fatalf("%s: sources/sinks = %d/%d", name, len(app.Sources()), len(app.Sinks()))
			}
		}
	}
}

func TestAppNamesEncodeSize(t *testing.T) {
	app, err := FFT2D(1024, 8)
	if err != nil {
		t.Fatal(err)
	}
	if app.Name != "fft2d_1024" {
		t.Fatalf("name = %q", app.Name)
	}
	ct, _ := CornerTurn(512, 4)
	if ct.Name != "cornerturn_512" {
		t.Fatalf("name = %q", ct.Name)
	}
}

func TestCornerTurnHasRedistributionArc(t *testing.T) {
	app, err := CornerTurn(256, 4)
	if err != nil {
		t.Fatal(err)
	}
	// The ingest -> turn arc must change striping (rows -> cols): that arc
	// IS the distributed corner turn.
	found := false
	for _, arc := range app.Arcs {
		if arc.From.Fn.Name == "ingest" && arc.To.Fn.Name == "turn" {
			if arc.From.Striping != model.ByRows || arc.To.Striping != model.ByCols {
				t.Fatalf("redistribution arc striping %s -> %s", arc.From.Striping, arc.To.Striping)
			}
			found = true
		}
	}
	if !found {
		t.Fatal("redistribution arc missing")
	}
}

func TestBuilderSizeValidation(t *testing.T) {
	cases := []struct {
		n, threads int
	}{
		{63, 4},  // not a power of two
		{0, 1},   // too small
		{64, 0},  // no threads
		{64, 65}, // more threads than rows
	}
	for _, c := range cases {
		if _, err := FFT2D(c.n, c.threads); err == nil {
			t.Errorf("FFT2D(%d, %d) accepted", c.n, c.threads)
		}
		if _, err := CornerTurn(c.n, c.threads); err == nil {
			t.Errorf("CornerTurn(%d, %d) accepted", c.n, c.threads)
		}
		if _, err := STAP(c.n, c.threads); err == nil {
			t.Errorf("STAP(%d, %d) accepted", c.n, c.threads)
		}
	}
}

func TestSTAPStageOrder(t *testing.T) {
	app, err := STAP(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	order, err := app.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, f := range order {
		names = append(names, f.Name)
	}
	want := "source window doppler beam detect sink"
	if got := strings.Join(names, " "); got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

func TestModelsSerialise(t *testing.T) {
	// Every builder's output must round-trip through the Designer text
	// format (they are the shelf models shipped with the tools).
	for _, build := range []func(n, threads int) (*model.App, error){FFT2D, CornerTurn, STAP} {
		app, err := build(128, 4)
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := app.WriteText(&sb); err != nil {
			t.Fatal(err)
		}
		back, err := model.ReadText(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if err := funclib.ValidateApp(back); err != nil {
			t.Fatal(err)
		}
		if len(back.Functions) != len(app.Functions) || len(back.Arcs) != len(app.Arcs) {
			t.Fatalf("%s: round trip lost structure", app.Name)
		}
	}
}
