// Package apps builds the benchmark application models of §3.1 — the
// Parallel 2D FFT and the Distributed Corner Turn — plus the space-time
// adaptive processing (STAP) style pipeline used by the examples. These are
// the models an engineer would draw in the SAGE Designer's application
// editor; here they are constructed programmatically and can be serialised
// with model.WriteText.
package apps

import (
	"fmt"

	"repro/internal/funclib"
	"repro/internal/model"
)

// FFT2D builds the Parallel 2D FFT application: a data source feeding a
// row-striped row-FFT stage, a column-striped column-FFT stage (the
// row-to-column striping change on the connecting arc is the distributed
// corner turn, performed by the runtime), and a data sink.
//
//	source -> fft_rows(T, rows->rows) -> fft_cols(T, cols->cols) -> sink
//
// n is the square matrix edge (power of two); threads is the data
// parallelism of the FFT stages.
func FFT2D(n, threads int) (*model.App, error) {
	if err := checkSize(n, threads); err != nil {
		return nil, err
	}
	a := model.NewApp(fmt.Sprintf("fft2d_%d", n))
	mt, err := a.AddType(&model.DataType{Name: "matrix", Rows: n, Cols: n, Elem: model.ElemComplex})
	if err != nil {
		return nil, err
	}

	src := a.AddFunction(&model.Function{Name: "source", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 1}})
	src.AddOutput("out", mt, model.ByRows)

	fftr := a.AddFunction(&model.Function{Name: "fft_rows", Kind: "fft_rows", Threads: threads})
	fftr.AddInput("in", mt, model.ByRows)
	fftr.AddOutput("out", mt, model.ByRows)

	fftc := a.AddFunction(&model.Function{Name: "fft_cols", Kind: "fft_cols", Threads: threads})
	fftc.AddInput("in", mt, model.ByCols)
	fftc.AddOutput("out", mt, model.ByCols)

	sink := a.AddFunction(&model.Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", mt, model.ByRows)

	for _, c := range [][4]string{
		{"source", "out", "fft_rows", "in"},
		{"fft_rows", "out", "fft_cols", "in"},
		{"fft_cols", "out", "sink", "in"},
	} {
		if _, err := a.Connect(c[0], c[1], c[2], c[3]); err != nil {
			return nil, err
		}
	}
	return finish(a)
}

// CornerTurn builds the Distributed Corner Turn application: the ingest
// stage holds the matrix row-striped; the arc to the turn stage demands it
// column-striped (the all-to-all redistribution); the turn stage finishes
// with a local transpose so its output is the row-striped transpose.
//
//	source -> ingest identity(T, rows->rows) -> turn transpose_block(T, cols->rows) -> sink
func CornerTurn(n, threads int) (*model.App, error) {
	if err := checkSize(n, threads); err != nil {
		return nil, err
	}
	a := model.NewApp(fmt.Sprintf("cornerturn_%d", n))
	mt, err := a.AddType(&model.DataType{Name: "matrix", Rows: n, Cols: n, Elem: model.ElemComplex})
	if err != nil {
		return nil, err
	}

	src := a.AddFunction(&model.Function{Name: "source", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 1}})
	src.AddOutput("out", mt, model.ByRows)

	ingest := a.AddFunction(&model.Function{Name: "ingest", Kind: "identity", Threads: threads})
	ingest.AddInput("in", mt, model.ByRows)
	ingest.AddOutput("out", mt, model.ByRows)

	turn := a.AddFunction(&model.Function{Name: "turn", Kind: "transpose_block", Threads: threads})
	turn.AddInput("in", mt, model.ByCols)
	turn.AddOutput("out", mt, model.ByRows)

	sink := a.AddFunction(&model.Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", mt, model.ByRows)

	for _, c := range [][4]string{
		{"source", "out", "ingest", "in"},
		{"ingest", "out", "turn", "in"},
		{"turn", "out", "sink", "in"},
	} {
		if _, err := a.Connect(c[0], c[1], c[2], c[3]); err != nil {
			return nil, err
		}
	}
	return finish(a)
}

// STAP builds a space-time-adaptive-processing style pipeline of the kind
// the paper's introduction motivates (radar/signal processing): windowing,
// Doppler FFT across rows, corner turn, FFT down the (former) columns, and
// magnitude detection.
//
//	source -> window_rows -> fft_rows -> fft_cols -> mag2 -> sink
func STAP(n, threads int) (*model.App, error) {
	if err := checkSize(n, threads); err != nil {
		return nil, err
	}
	a := model.NewApp(fmt.Sprintf("stap_%d", n))
	mt, err := a.AddType(&model.DataType{Name: "cube", Rows: n, Cols: n, Elem: model.ElemComplex})
	if err != nil {
		return nil, err
	}

	src := a.AddFunction(&model.Function{Name: "source", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 7}})
	src.AddOutput("out", mt, model.ByRows)

	win := a.AddFunction(&model.Function{Name: "window", Kind: "window_rows", Threads: threads,
		Params: map[string]any{"window": "hamming"}})
	win.AddInput("in", mt, model.ByRows)
	win.AddOutput("out", mt, model.ByRows)

	dop := a.AddFunction(&model.Function{Name: "doppler", Kind: "fft_rows", Threads: threads})
	dop.AddInput("in", mt, model.ByRows)
	dop.AddOutput("out", mt, model.ByRows)

	beam := a.AddFunction(&model.Function{Name: "beam", Kind: "fft_cols", Threads: threads})
	beam.AddInput("in", mt, model.ByCols)
	beam.AddOutput("out", mt, model.ByCols)

	det := a.AddFunction(&model.Function{Name: "detect", Kind: "mag2", Threads: threads})
	det.AddInput("in", mt, model.ByCols)
	det.AddOutput("out", mt, model.ByCols)

	sink := a.AddFunction(&model.Function{Name: "sink", Kind: "sink_matrix", Threads: 1})
	sink.AddInput("in", mt, model.ByRows)

	for _, c := range [][4]string{
		{"source", "out", "window", "in"},
		{"window", "out", "doppler", "in"},
		{"doppler", "out", "beam", "in"},
		{"beam", "out", "detect", "in"},
		{"detect", "out", "sink", "in"},
	} {
		if _, err := a.Connect(c[0], c[1], c[2], c[3]); err != nil {
			return nil, err
		}
	}
	return finish(a)
}

func checkSize(n, threads int) error {
	if n < 2 || n&(n-1) != 0 {
		return fmt.Errorf("apps: matrix edge %d must be a power of two >= 2", n)
	}
	if threads < 1 || threads > n {
		return fmt.Errorf("apps: thread count %d must be in [1, %d]", threads, n)
	}
	return nil
}

func finish(a *model.App) (*model.App, error) {
	a.AssignIDs()
	if err := a.Validate(); err != nil {
		return nil, err
	}
	if err := funclib.ValidateApp(a); err != nil {
		return nil, err
	}
	return a, nil
}
