package sim

import (
	"testing"
	"time"
)

// Allocation-regression ceilings for the event fast path. The pooled-event
// scheduler is designed to be allocation-free in steady state: events come
// from the kernel's free list, same-time wakes ride the FIFO lane, process
// handoffs reuse each Proc's resume channel, and resource waits use the
// Proc-embedded waiter. These tests pin that property with
// testing.AllocsPerRun so a future change cannot quietly reintroduce
// per-event garbage.

// TestScheduleAllocFree pins the timer path (heap + pooled events) at zero
// steady-state allocations. The tick closure is created once outside the
// measured function; the first run warms the event free list.
func TestScheduleAllocFree(t *testing.T) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			k.After(time.Microsecond, tick)
		}
	}
	run := func() {
		n = 0
		k.After(time.Microsecond, tick)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if avg := testing.AllocsPerRun(5, run); avg > 0 {
		t.Fatalf("timer scheduling allocates %.1f per 1000-event run, want 0", avg)
	}
}

// TestSameTimeFIFOAllocFree pins the zero-delay fast lane (schedule/After at
// the current instant skips the heap entirely).
func TestSameTimeFIFOAllocFree(t *testing.T) {
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < 1000 {
			k.After(0, tick)
		}
	}
	run := func() {
		n = 0
		k.After(0, tick)
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	}
	run()
	if avg := testing.AllocsPerRun(5, run); avg > 0 {
		t.Fatalf("same-time scheduling allocates %.1f per 1000-event run, want 0", avg)
	}
}

// marginalAllocs runs a whole scenario at two operation counts and returns
// the extra allocations per additional operation. Fixed costs (kernel,
// channels, process spawns, goroutine stacks) cancel out, leaving the
// steady-state per-operation rate.
func marginalAllocs(t *testing.T, scenario func(ops int)) float64 {
	t.Helper()
	const small, large = 100, 1100
	measure := func(ops int) float64 {
		return testing.AllocsPerRun(5, func() { scenario(ops) })
	}
	measure(large) // warm runtime pools before either measurement
	base := measure(small)
	big := measure(large)
	return (big - base) / float64(large-small)
}

// TestChanExchangeAllocCeiling pins the producer/consumer exchange —
// Send + same-time wake + Recv + direct process handoff — at (amortised)
// zero allocations per operation.
func TestChanExchangeAllocCeiling(t *testing.T) {
	perOp := marginalAllocs(t, func(ops int) {
		k := NewKernel()
		c := NewChan[int](k, "data")
		k.Spawn("tx", func(p *Proc) {
			for i := 0; i < ops; i++ {
				c.Send(i)
				p.Sleep(0)
			}
		})
		k.Spawn("rx", func(p *Proc) {
			for i := 0; i < ops; i++ {
				c.Recv(p)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if perOp > 0.01 {
		t.Fatalf("channel exchange allocates %.3f per op, want 0", perOp)
	}
}

// TestResourceUseAllocCeiling pins contended resource acquisition (four
// processes on a capacity-1 resource, Proc-embedded waiters).
func TestResourceUseAllocCeiling(t *testing.T) {
	perOp := marginalAllocs(t, func(ops int) {
		k := NewKernel()
		r := NewResource(k, "bus", 1)
		for i := 0; i < 4; i++ {
			k.Spawn("u", func(p *Proc) {
				for j := 0; j < ops/4; j++ {
					r.Use(p, 1, time.Microsecond)
				}
			})
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
	})
	if perOp > 0.01 {
		t.Fatalf("contended resource use allocates %.3f per op, want 0", perOp)
	}
}
