package sim

import "fmt"

// Chan is an unbounded, timestamped mailbox connecting simulated processes.
//
// Values may be delivered immediately (Send) or at a future virtual time
// (SendAt), which is how the fabric models in-flight messages: the sender
// computes an arrival time and the value only becomes visible to receivers
// once the clock reaches it. Receivers block in virtual time until a value is
// available. Delivery order is (arrival time, send sequence), so simultaneous
// arrivals are received in the order they were sent.
//
// On a sharded kernel a mailbox belongs to one shard: every process that
// sends or receives on it must be pinned there (create it with NewChanOn).
// Cross-shard communication goes through Proc.AfterOn, which schedules a
// callback on the destination shard that then operates on its local
// channels.
type Chan[T any] struct {
	sh      *shard
	name    string
	ready   []T     // values whose arrival time has passed
	waiters []*Proc // receivers blocked on an empty mailbox, FIFO
}

// NewChan creates a mailbox owned by kernel k (on shard 0 when sharded).
// The name appears in deadlock reports.
func NewChan[T any](k *Kernel, name string) *Chan[T] {
	return &Chan[T]{sh: k.s0, name: name}
}

// NewChanOn creates a mailbox on the shard owning the given scheduling
// domain. Identical to NewChan on an unsharded kernel.
func NewChanOn[T any](k *Kernel, domain int, name string) *Chan[T] {
	return &Chan[T]{sh: k.shardFor(domain), name: name}
}

// Len reports the number of values currently available to receivers.
func (c *Chan[T]) Len() int { return len(c.ready) }

// Name returns the mailbox name given at creation (used by deadlock reports
// and trace collectors).
func (c *Chan[T]) Name() string { return c.name }

// SetName renames the mailbox. Owners that pool channels across waits (e.g.
// mpi's receive engine) rename the recycled channel so deadlock reports and
// trace Wait spans carry the same per-wait name a fresh channel would.
func (c *Chan[T]) SetName(name string) { c.name = name }

// Send delivers v at the current virtual time without blocking the sender.
func (c *Chan[T]) Send(v T) { c.deliver(v) }

// SendAt schedules v to arrive at virtual time at (clamped to now). The
// sender does not block; use Resource to model the sender holding a link.
func (c *Chan[T]) SendAt(at Time, v T) {
	if at <= c.sh.now {
		c.deliver(v)
		return
	}
	c.sh.schedule(at, func() { c.deliver(v) })
}

// SendAfter schedules v to arrive after virtual duration d.
func (c *Chan[T]) SendAfter(d Duration, v T) { c.SendAt(c.sh.now.Add(d), v) }

func (c *Chan[T]) deliver(v T) {
	c.ready = append(c.ready, v)
	if tr := c.sh.tracer; tr != nil {
		tr.ChanOp("send", c.name, len(c.ready), c.sh.now)
	}
	if len(c.waiters) > 0 {
		p := c.waiters[0]
		// Shift rather than reslice so the backing array's capacity is
		// reused by later waits.
		copy(c.waiters, c.waiters[1:])
		c.waiters = c.waiters[:len(c.waiters)-1]
		// Wake at the current instant; the receiver will take the value
		// when dispatched.
		c.sh.wake(p, c.sh.now)
	}
}

// Recv blocks the calling process until a value is available and returns it.
func (c *Chan[T]) Recv(p *Proc) T {
	if len(c.ready) == 0 {
		start := c.sh.now
		for len(c.ready) == 0 {
			c.waiters = append(c.waiters, p)
			p.yield("recv", c.name)
		}
		if tr := c.sh.tracer; tr != nil && c.sh.now > start {
			tr.Wait(p.pid, p.name, "recv", c.name, start, c.sh.now, 0)
		}
	}
	v := c.ready[0]
	// Shift rather than reslice forever to keep memory bounded.
	copy(c.ready, c.ready[1:])
	c.ready = c.ready[:len(c.ready)-1]
	if tr := c.sh.tracer; tr != nil {
		tr.ChanOp("recv", c.name, len(c.ready), c.sh.now)
	}
	return v
}

// TryRecv returns a value without blocking if one is available.
func (c *Chan[T]) TryRecv() (T, bool) {
	var zero T
	if len(c.ready) == 0 {
		return zero, false
	}
	v := c.ready[0]
	copy(c.ready, c.ready[1:])
	c.ready = c.ready[:len(c.ready)-1]
	return v, true
}

// Resource models a counted resource (a link, a bus, a DMA engine) that
// processes hold for spans of virtual time. Waiters are served FIFO, which
// models fair arbitration and keeps runs deterministic. Like Chan, a
// Resource belongs to one shard of a sharded kernel (NewResourceOn).
type Resource struct {
	sh       *shard
	name     string
	capacity int
	inUse    int
	waiters  []*resWaiter
}

// resWaiter is a resource-queue entry. Each Proc embeds one (a process
// waits on at most one Resource at a time), so queuing allocates nothing.
type resWaiter struct {
	p *Proc
	n int
	// woken guards against double-wakes: two releases at the same instant
	// must not schedule two resumes for the same head waiter (the second
	// would yank the process out of a later, unrelated block).
	woken bool
}

// NewResource creates a resource with the given capacity (must be >= 1),
// owned by kernel k (on shard 0 when sharded).
func NewResource(k *Kernel, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{sh: k.s0, name: name, capacity: capacity}
}

// NewResourceOn creates a resource on the shard owning the given scheduling
// domain. Identical to NewResource on an unsharded kernel.
func NewResourceOn(k *Kernel, domain int, name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{sh: k.shardFor(domain), name: name, capacity: capacity}
}

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the currently held units.
func (r *Resource) InUse() int { return r.inUse }

// Name returns the resource name given at creation.
func (r *Resource) Name() string { return r.name }

// QueueDepth reports the number of processes waiting to acquire.
func (r *Resource) QueueDepth() int { return len(r.waiters) }

// Acquire blocks the process until n units are available, then takes them.
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 || n > r.capacity {
		panic(fmt.Sprintf("sim: acquire %d of resource %q with capacity %d", n, r.name, r.capacity))
	}
	// FIFO fairness: if others are already queued, go behind them even if
	// capacity is momentarily available.
	if r.inUse+n > r.capacity || len(r.waiters) > 0 {
		depth := len(r.waiters)
		start := r.sh.now
		w := &p.rw
		w.p, w.n, w.woken = p, n, false
		r.waiters = append(r.waiters, w)
		for {
			p.yield("acquire", r.name)
			if len(r.waiters) > 0 && r.waiters[0] == w && r.inUse+n <= r.capacity {
				copy(r.waiters, r.waiters[1:])
				r.waiters = r.waiters[:len(r.waiters)-1]
				break
			}
			// Spurious wake: allow a future release to wake us again.
			w.woken = false
		}
		if tr := r.sh.tracer; tr != nil && r.sh.now > start {
			tr.Wait(p.pid, p.name, "acquire", r.name, start, r.sh.now, depth)
		}
	}
	r.inUse += n
	if tr := r.sh.tracer; tr != nil {
		tr.ResourceOp("acquire", r.name, r.inUse, r.capacity, len(r.waiters), r.sh.now)
	}
	// Leftover capacity may satisfy the next queued waiter.
	r.wakeHead()
}

// Release returns n units and wakes the head waiter if it can now proceed.
func (r *Resource) Release(n int) {
	r.inUse -= n
	if r.inUse < 0 {
		panic(fmt.Sprintf("sim: resource %q over-released", r.name))
	}
	if tr := r.sh.tracer; tr != nil {
		tr.ResourceOp("release", r.name, r.inUse, r.capacity, len(r.waiters), r.sh.now)
	}
	r.wakeHead()
}

func (r *Resource) wakeHead() {
	if len(r.waiters) > 0 && !r.waiters[0].woken && r.inUse+r.waiters[0].n <= r.capacity {
		r.waiters[0].woken = true
		r.sh.wake(r.waiters[0].p, r.sh.now)
	}
}

// Use acquires n units, holds them for virtual duration d, then releases.
// This is the standard idiom for modelling occupancy of a link or bus.
func (r *Resource) Use(p *Proc, n int, d Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(n)
}

// Barrier synchronises a fixed set of processes: each process calls Wait and
// blocks until all n have arrived, at which point every process resumes at
// the same virtual instant. The barrier is reusable (generation counted).
// On a sharded kernel all participants must be pinned to the same shard
// (the first waiter's shard adopts the barrier).
type Barrier struct {
	k       *Kernel
	name    string
	n       int
	arrived int
	gen     int
	waiting []*Proc
}

// NewBarrier creates a barrier for n participants.
func NewBarrier(k *Kernel, name string, n int) *Barrier {
	if n < 1 {
		panic("sim: barrier size must be >= 1")
	}
	return &Barrier{k: k, name: name, n: n}
}

// Wait blocks until all participants of the current generation have arrived.
func (b *Barrier) Wait(p *Proc) {
	sh := p.sh
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.gen++
		for _, w := range b.waiting {
			if w.sh != sh {
				panic(fmt.Sprintf("sim: barrier %q spans shards", b.name))
			}
			sh.wake(w, sh.now)
		}
		b.waiting = b.waiting[:0]
		return
	}
	gen := b.gen
	depth := len(b.waiting)
	start := sh.now
	b.waiting = append(b.waiting, p)
	for b.gen == gen {
		p.yield("barrier", b.name)
	}
	if tr := sh.tracer; tr != nil && sh.now > start {
		tr.Wait(p.pid, p.name, "barrier", b.name, start, sh.now, depth)
	}
}
