package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"testing/quick"
	"time"
)

func TestClockStartsAtZero(t *testing.T) {
	k := NewKernel()
	if k.Now() != 0 {
		t.Fatalf("new kernel clock = %v, want 0", k.Now())
	}
}

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel()
	var at Time
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Millisecond)
		at = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(5*time.Millisecond) {
		t.Fatalf("woke at %v, want 5ms", at)
	}
}

func TestSleepZeroAndNegative(t *testing.T) {
	k := NewKernel()
	var order []string
	k.Spawn("a", func(p *Proc) {
		p.Sleep(0)
		order = append(order, "a")
	})
	k.Spawn("b", func(p *Proc) {
		p.Sleep(-time.Second)
		order = append(order, "b")
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Now() != 0 {
		t.Fatalf("clock advanced to %v for zero sleeps", k.Now())
	}
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("order = %v, want [a b]", order)
	}
}

func TestSleepUntil(t *testing.T) {
	k := NewKernel()
	var woke Time
	k.Spawn("p", func(p *Proc) {
		p.SleepUntil(Time(time.Second))
		p.SleepUntil(Time(time.Millisecond)) // in the past: no-op
		woke = p.Now()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if woke != Time(time.Second) {
		t.Fatalf("woke = %v, want 1s", woke)
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.After(time.Millisecond, func() { order = append(order, i) })
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestSpawnFromProcess(t *testing.T) {
	k := NewKernel()
	var childTime Time
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Millisecond)
		k.Spawn("child", func(c *Proc) {
			c.Sleep(time.Millisecond)
			childTime = c.Now()
		})
		p.Sleep(10 * time.Millisecond)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != Time(2*time.Millisecond) {
		t.Fatalf("child finished at %v, want 2ms", childTime)
	}
}

func TestChanSendRecvSameInstant(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	var got int
	var at Time
	k.Spawn("recv", func(p *Proc) {
		got = c.Recv(p)
		at = p.Now()
	})
	k.Spawn("send", func(p *Proc) {
		p.Sleep(3 * time.Millisecond)
		c.Send(41)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if got != 41 || at != Time(3*time.Millisecond) {
		t.Fatalf("got %d at %v, want 41 at 3ms", got, at)
	}
}

func TestChanSendAtDelaysDelivery(t *testing.T) {
	k := NewKernel()
	c := NewChan[string](k, "c")
	var at Time
	k.Spawn("recv", func(p *Proc) {
		c.Recv(p)
		at = p.Now()
	})
	c.SendAt(Time(7*time.Millisecond), "hello")
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if at != Time(7*time.Millisecond) {
		t.Fatalf("received at %v, want 7ms", at)
	}
}

func TestChanFIFOAcrossArrivals(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	c.SendAt(Time(2*time.Millisecond), 2)
	c.SendAt(Time(1*time.Millisecond), 1)
	c.SendAt(Time(2*time.Millisecond), 3) // same instant as 2: sent later
	var got []int
	k.Spawn("r", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, c.Recv(p))
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestChanMultipleWaitersServedFIFO(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	var order []string
	for _, name := range []string{"w0", "w1", "w2"} {
		name := name
		k.Spawn(name, func(p *Proc) {
			c.Recv(p)
			order = append(order, name)
		})
	}
	k.Spawn("s", func(p *Proc) {
		p.Sleep(time.Millisecond)
		for i := 0; i < 3; i++ {
			c.Send(i)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(order) != "[w0 w1 w2]" {
		t.Fatalf("wake order = %v, want FIFO", order)
	}
}

func TestChanTryRecv(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "c")
	if _, ok := c.TryRecv(); ok {
		t.Fatal("TryRecv on empty chan reported ok")
	}
	c.Send(9)
	v, ok := c.TryRecv()
	if !ok || v != 9 {
		t.Fatalf("TryRecv = %d,%v want 9,true", v, ok)
	}
}

func TestDeadlockDetection(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "never")
	k.Spawn("stuck", func(p *Proc) { c.Recv(p) })
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 1 {
		t.Fatalf("blocked = %v, want 1 entry", de.Blocked)
	}
}

func TestResourceSerialisesHolders(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "link", 1)
	var finished []Time
	for i := 0; i < 3; i++ {
		k.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, 1, 10*time.Millisecond)
			finished = append(finished, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(30 * time.Millisecond)}
	for i := range want {
		if finished[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finished, want)
		}
	}
}

func TestResourceCapacityTwoOverlaps(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "bus", 2)
	var finished []Time
	for i := 0; i < 4; i++ {
		k.Spawn(fmt.Sprintf("u%d", i), func(p *Proc) {
			r.Use(p, 1, 10*time.Millisecond)
			finished = append(finished, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	// Pairs run concurrently: two finish at 10ms, two at 20ms.
	want := []Time{Time(10 * time.Millisecond), Time(10 * time.Millisecond), Time(20 * time.Millisecond), Time(20 * time.Millisecond)}
	for i := range want {
		if finished[i] != want[i] {
			t.Fatalf("finish times %v, want %v", finished, want)
		}
	}
}

func TestResourceSimultaneousReleasesNoDoubleWake(t *testing.T) {
	// Regression: two holders releasing at the same virtual instant used to
	// schedule two wakes for the same head waiter; the second resume yanked
	// it out of a later sleep and eventually dispatched a finished process,
	// hanging the kernel. The woken flag must prevent that.
	k := NewKernel()
	r := NewResource(k, "bus", 2)
	var finished []string
	for i := 0; i < 3; i++ {
		name := fmt.Sprintf("u%d", i)
		k.Spawn(name, func(p *Proc) {
			r.Use(p, 1, 10*time.Millisecond)
			// A second sleep after the resource: a spurious early resume
			// here is exactly the historical failure.
			p.Sleep(5 * time.Millisecond)
			finished = append(finished, fmt.Sprintf("%s@%v", name, p.Now()))
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"u0@15ms", "u1@15ms", "u2@25ms"}
	if fmt.Sprint(finished) != fmt.Sprint(want) {
		t.Fatalf("finished = %v, want %v", finished, want)
	}
}

func TestResourceMultiUnitAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "dma", 3)
	var events []string
	k.Spawn("big", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(5 * time.Millisecond)
		r.Release(3)
		events = append(events, fmt.Sprintf("big@%v", p.Now()))
	})
	k.Spawn("small", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 1)
		events = append(events, fmt.Sprintf("small@%v", p.Now()))
		r.Release(1)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0] != "big@5ms" || events[1] != "small@5ms" {
		t.Fatalf("events = %v", events)
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("over-release did not panic")
		}
	}()
	k := NewKernel()
	r := NewResource(k, "x", 1)
	r.Release(1)
}

func TestResourceInvalidAcquirePanics(t *testing.T) {
	k := NewKernel()
	r := NewResource(k, "x", 1)
	panicked := false
	k.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		r.Acquire(p, 2)
	})
	_ = k.Run()
	if !panicked {
		t.Fatal("acquire beyond capacity did not panic")
	}
}

func TestBarrierReleasesAllAtOnce(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, "b", 3)
	var releases []Time
	delays := []Duration{time.Millisecond, 5 * time.Millisecond, 3 * time.Millisecond}
	for i := 0; i < 3; i++ {
		d := delays[i]
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
			releases = append(releases, p.Now())
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	for _, r := range releases {
		if r != Time(5*time.Millisecond) {
			t.Fatalf("releases = %v, want all at 5ms", releases)
		}
	}
}

func TestBarrierReusable(t *testing.T) {
	k := NewKernel()
	b := NewBarrier(k, "b", 2)
	counts := make([]int, 2)
	for i := 0; i < 2; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			for round := 0; round < 5; round++ {
				p.Sleep(Duration(i+1) * time.Millisecond)
				b.Wait(p)
				counts[i]++
			}
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if counts[0] != 5 || counts[1] != 5 {
		t.Fatalf("counts = %v, want [5 5]", counts)
	}
}

func TestDeterministicReplay(t *testing.T) {
	// The same randomised workload must produce an identical event history
	// on every run: determinism is the foundation of the experiments.
	run := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		k := NewKernel()
		c := NewChan[int](k, "c")
		var history []string
		for i := 0; i < 8; i++ {
			i := i
			d := Duration(rng.Intn(10)) * time.Millisecond
			k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
				p.Sleep(d)
				c.Send(i)
			})
		}
		k.Spawn("collector", func(p *Proc) {
			for i := 0; i < 8; i++ {
				v := c.Recv(p)
				history = append(history, fmt.Sprintf("%d@%v", v, p.Now()))
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return history
	}
	a := run(42)
	b := run(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("replay diverged:\n%v\n%v", a, b)
	}
}

func TestSchedulePastPanics(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) { p.Sleep(time.Second) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	k.s0.schedule(Time(0), func() {})
}

func TestStopHaltsRun(t *testing.T) {
	k := NewKernel()
	n := 0
	k.Spawn("p", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Millisecond)
			n++
			if n == 10 {
				k.Stop()
			}
		}
	})
	_ = k.Run()
	if n != 10 {
		t.Fatalf("ran %d iterations, want 10", n)
	}
	if k.Now() != Time(10*time.Millisecond) {
		t.Fatalf("stopped at %v, want 10ms", k.Now())
	}
}

func TestTimeHelpers(t *testing.T) {
	tm := Time(1500 * time.Millisecond)
	if tm.Seconds() != 1.5 {
		t.Fatalf("Seconds = %v", tm.Seconds())
	}
	if tm.Add(500*time.Millisecond) != Time(2*time.Second) {
		t.Fatal("Add wrong")
	}
	if tm.Sub(Time(time.Second)) != 500*time.Millisecond {
		t.Fatal("Sub wrong")
	}
	if tm.String() != "1.5s" {
		t.Fatalf("String = %q", tm.String())
	}
}

func TestHeapPropertyOrdering(t *testing.T) {
	// Property: popping the heap always yields nondecreasing (time, seq).
	check := func(times []uint16) bool {
		var h eventHeap
		for i, tv := range times {
			h.push(&event{at: Time(tv), seq: uint64(i)})
		}
		var prev *event
		for {
			e := h.pop()
			if e == nil {
				break
			}
			if prev != nil {
				if e.at < prev.at || (e.at == prev.at && e.seq < prev.seq) {
					return false
				}
			}
			prev = e
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestManyProcessesStress(t *testing.T) {
	k := NewKernel()
	const n = 500
	b := NewBarrier(k, "b", n)
	done := 0
	for i := 0; i < n; i++ {
		i := i
		k.Spawn(fmt.Sprintf("p%d", i), func(p *Proc) {
			p.Sleep(Duration(i) * time.Microsecond)
			b.Wait(p)
			done++
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("done = %d, want %d", done, n)
	}
	if k.Now() != Time((n-1)*int(time.Microsecond)) {
		t.Fatalf("final time %v", k.Now())
	}
}

// goroutinesSettleTo polls until the live goroutine count drops to at most
// want (teardown goroutines need a few scheduler rounds to exit).
func goroutinesSettleTo(t *testing.T, want int) int {
	t.Helper()
	var n int
	for i := 0; i < 200; i++ {
		n = runtime.NumGoroutine()
		if n <= want {
			return n
		}
		time.Sleep(time.Millisecond)
	}
	return n
}

// TestShutdownReleasesLeakedGoroutines is the leak regression test: before
// Kernel.Shutdown existed, every process left blocked by a DeadlockError or
// a Stop stayed parked in its yield forever — one leaked goroutine per
// process per kernel, accumulating across the thousands of kernels an
// experiment sweep creates.
func TestShutdownReleasesLeakedGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()
	const kernels = 100
	for i := 0; i < kernels; i++ {
		k := NewKernel()
		c := NewChan[int](k, "never")
		for j := 0; j < 3; j++ {
			k.Spawn(fmt.Sprintf("stuck%d", j), func(p *Proc) { c.Recv(p) })
		}
		// Odd kernels deadlock; even kernels are halted by Stop mid-run.
		if i%2 == 0 {
			k.Spawn("stopper", func(p *Proc) {
				p.Sleep(time.Millisecond)
				k.Stop()
			})
		}
		if err := k.Run(); err == nil && i%2 == 1 {
			t.Fatal("expected a DeadlockError")
		}
		k.Shutdown()
		if k.LiveProcs() != 0 {
			t.Fatalf("kernel %d: %d live procs after Shutdown", i, k.LiveProcs())
		}
	}
	// 3 blocked procs per kernel would leak ~300 goroutines without the fix;
	// allow a little slack for the test runner's own machinery.
	if n := goroutinesSettleTo(t, base+10); n > base+10 {
		t.Fatalf("goroutines grew from %d to %d across %d shut-down kernels", base, n, kernels)
	}
}

func TestShutdownIdempotentAndSafeWhenClean(t *testing.T) {
	// Never ran.
	k := NewKernel()
	k.Shutdown()
	k.Shutdown()
	// Ran to completion: nothing to tear down.
	k = NewKernel()
	k.Spawn("p", func(p *Proc) { p.Sleep(time.Millisecond) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs = %d", k.LiveProcs())
	}
}

func TestRunAfterShutdownErrors(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) { p.Sleep(time.Millisecond) })
	k.Shutdown()
	if err := k.Run(); err == nil {
		t.Fatal("Run after Shutdown did not error")
	}
}

// TestShutdownReleasesNeverStartedProcs covers processes spawned after Stop
// whose start event never fires: they have no goroutine, but must still be
// cleared from the books.
func TestShutdownReleasesNeverStartedProcs(t *testing.T) {
	k := NewKernel()
	k.Spawn("early", func(p *Proc) {
		k.Stop()
		k.Spawn("orphan", func(p *Proc) { p.Sleep(time.Second) })
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.LiveProcs() != 1 {
		t.Fatalf("live procs before Shutdown = %d, want the orphan", k.LiveProcs())
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("live procs after Shutdown = %d", k.LiveProcs())
	}
}

// TestShutdownTerminatesMidBody verifies the terminal signal unwinds a
// process out of an arbitrary yield point mid-body and that statements after
// the yield never execute.
func TestShutdownTerminatesMidBody(t *testing.T) {
	k := NewKernel()
	c := NewChan[int](k, "never")
	reached := false
	k.Spawn("worker", func(p *Proc) {
		p.Sleep(time.Millisecond)
		c.Recv(p) // blocks forever
		reached = true
	})
	if _, ok := k.Run().(*DeadlockError); !ok {
		t.Fatal("expected DeadlockError")
	}
	k.Shutdown()
	if reached {
		t.Fatal("statement after the terminal yield executed")
	}
}

// TestStaleWakeAfterShutdownIsDropped pins the stop-aware dispatch: a wake
// event for a process that Shutdown tore down must be dropped, not dispatch
// into a dead kernel.
func TestStaleWakeAfterShutdownIsDropped(t *testing.T) {
	k := NewKernel()
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(time.Hour) // wake event stays queued when Stop fires
	})
	k.Spawn("stopper", func(p *Proc) {
		p.Sleep(time.Millisecond)
		k.Stop()
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.Pending() == 0 {
		t.Fatal("expected the sleeper's wake event to still be queued")
	}
	k.Shutdown()
	// The queued wake references a killed proc; firing it must be dropped by
	// advance's liveness re-check, not dispatch into a dead kernel. Run
	// refuses to restart a dead kernel, so drive the event loop directly.
	ev := k.s0.popEvent()
	if ev == nil {
		t.Fatal("no queued event")
	}
	if ev.proc == nil || !(ev.proc.killed || ev.proc.done) {
		t.Fatal("queued event is not a stale wake for a torn-down proc")
	}
	k.s0.enqueue(ev) // put it back and let advance make the drop decision
	done := make(chan struct{})
	go func() {
		k.s0.stopped = false // Shutdown set it; advance must still drop the wake
		if got := k.s0.advance(nil); got != advDrained {
			t.Errorf("advance = %v, want advDrained", got)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("stale wake dispatched into a dead kernel and hung")
	}
}

func TestLiveProcsAndPending(t *testing.T) {
	k := NewKernel()
	k.Spawn("p", func(p *Proc) { p.Sleep(time.Millisecond) })
	if k.Pending() == 0 {
		t.Fatal("expected pending start event")
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if k.LiveProcs() != 0 || k.Pending() != 0 {
		t.Fatalf("live=%d pending=%d after run", k.LiveProcs(), k.Pending())
	}
}
