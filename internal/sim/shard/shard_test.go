package shard

import "testing"

func TestPartitionUniform(t *testing.T) {
	dom, k := Partition(Input{Nodes: 8, Shards: 4})
	if k != 4 {
		t.Fatalf("k = %d", k)
	}
	want := []int{0, 0, 1, 1, 2, 2, 3, 3}
	for i := range want {
		if dom[i] != want[i] {
			t.Fatalf("dom = %v, want %v", dom, want)
		}
	}
}

func TestPartitionClamps(t *testing.T) {
	dom, k := Partition(Input{Nodes: 3, Shards: 8})
	if k != 3 {
		t.Fatalf("k = %d, want 3", k)
	}
	for i, s := range dom {
		if s != i {
			t.Fatalf("dom = %v", dom)
		}
	}
	if _, k := Partition(Input{Nodes: 5, Shards: 1}); k != 1 {
		t.Fatalf("k = %d, want 1", k)
	}
	if _, k := Partition(Input{Nodes: 5, Shards: 0}); k != 1 {
		t.Fatalf("k = %d, want 1", k)
	}
}

func TestPartitionBoardAligned(t *testing.T) {
	// 8 nodes, 2 per board: shards must not split boards.
	boardOf := []int{0, 0, 1, 1, 2, 2, 3, 3}
	dom, k := Partition(Input{Nodes: 8, Shards: 3, BoardOf: boardOf})
	if k != 3 {
		t.Fatalf("k = %d", k)
	}
	if SplitsBoard(dom, boardOf) {
		t.Fatalf("partition splits a board: %v", dom)
	}
	// More shards than boards: boards stop being atomic and split into
	// per-node units so the request is honoured.
	boardOf2 := []int{0, 0, 0, 0, 1, 1, 1, 1}
	dom, k = Partition(Input{Nodes: 8, Shards: 6, BoardOf: boardOf2})
	if k != 6 {
		t.Fatalf("k = %d, want 6 (boards split on demand)", k)
	}
	if !SplitsBoard(dom, boardOf2) {
		t.Fatalf("expected split boards: %v", dom)
	}
	// Exactly as many boards as shards: still board-aligned.
	dom, k = Partition(Input{Nodes: 8, Shards: 2, BoardOf: boardOf2})
	if k != 2 || SplitsBoard(dom, boardOf2) {
		t.Fatalf("k = %d dom = %v, want 2 board-aligned shards", k, dom)
	}
}

func TestPartitionWeighted(t *testing.T) {
	// One hot node: the greedy cut should isolate it rather than pairing
	// it with half the remaining weight.
	w := []float64{100, 1, 1, 1}
	dom, k := Partition(Input{Nodes: 4, Shards: 2, Weight: w})
	if k != 2 {
		t.Fatalf("k = %d", k)
	}
	if dom[0] != 0 || dom[1] != 1 || dom[2] != 1 || dom[3] != 1 {
		t.Fatalf("dom = %v, want [0 1 1 1]", dom)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	in := Input{Nodes: 64, Shards: 8, BoardOf: make([]int, 64), Weight: make([]float64, 64)}
	for i := 0; i < 64; i++ {
		in.BoardOf[i] = i / 4
		in.Weight[i] = float64((i*37)%11 + 1)
	}
	a, _ := Partition(in)
	b, _ := Partition(in)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic partition")
		}
	}
	// Every shard non-empty, bands contiguous and monotone.
	seen := make([]bool, 8)
	for i, s := range a {
		seen[s] = true
		if i > 0 && a[i] < a[i-1] {
			t.Fatalf("non-monotone bands: %v", a)
		}
	}
	for s, ok := range seen {
		if !ok {
			t.Fatalf("shard %d empty: %v", s, a)
		}
	}
}
