// Package shard partitions a machine model's nodes across kernel shards
// for conservative parallel simulation (sim.Kernel.SetShards).
//
// The partitioner balances per-shard busy time using whatever per-node
// weights the caller has — typically the analytical twin's bottleneck
// decomposition (internal/twin exposes exact per-node busy accounting),
// falling back to uniform weights when no estimate exists. Partitions are
// contiguous bands of nodes, aligned to board boundaries when the caller
// provides a board map and the request allows it: splitting a board shrinks
// the kernel's lookahead from the inter-board latency to the (smaller)
// intra-board latency, costing window overhead, so boards stay whole while
// there are at least as many boards as requested shards. A request for more
// shards than boards deliberately splits them — the caller asked for
// parallelism over lookahead — and SplitsBoard tells the caller which
// latency bound now applies.
//
// The package is deliberately free of machine/twin imports so the
// dependency arrow keeps pointing one way (runtime layers depend on sim,
// never the reverse); callers translate their topology into the neutral
// Input form.
package shard

// Input describes one partitioning problem.
type Input struct {
	// Nodes is the number of scheduling domains (machine-model nodes).
	Nodes int
	// Shards is the requested shard count (clamped to [1, Nodes]).
	Shards int
	// BoardOf optionally maps each node to a board index; nodes sharing a
	// board are kept on one shard. Nil means every node is its own unit.
	// Board indices must be non-decreasing in node order (true for the
	// machine model's id/NodesPerBoard layout).
	BoardOf []int
	// Weight optionally gives each node's estimated busy time (any unit).
	// Nil or all-zero means uniform weights.
	Weight []float64
}

// Partition maps every node to a shard in [0, K) where K = the clamped
// shard count, and returns the mapping with K. Partitions are contiguous,
// board-aligned bands balanced by weight: band boundaries are placed so
// each shard's cumulative weight tracks total/K as closely as the unit
// granularity allows. Deterministic for identical inputs.
func Partition(in Input) (domainOf []int, shards int) {
	n := in.Nodes
	k := in.Shards
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	domainOf = make([]int, n)
	if k <= 1 {
		return domainOf, 1
	}

	// Units: maximal runs of nodes sharing a board (single nodes when no
	// board map). unitEnd[u] is one past the last node of unit u. When the
	// request exceeds the board count, boards stop being atomic: fall back
	// to per-node units and let the caller pay the intra-board lookahead.
	var unitEnd []int
	if in.BoardOf != nil {
		for i := 1; i < n; i++ {
			if in.BoardOf[i] != in.BoardOf[i-1] {
				unitEnd = append(unitEnd, i)
			}
		}
		unitEnd = append(unitEnd, n)
	}
	if in.BoardOf == nil || k > len(unitEnd) {
		unitEnd = make([]int, n)
		for i := range unitEnd {
			unitEnd[i] = i + 1
		}
	}
	if k <= 1 {
		return domainOf, 1
	}

	w := make([]float64, len(unitEnd))
	var total float64
	start := 0
	for u, end := range unitEnd {
		for i := start; i < end; i++ {
			if in.Weight != nil && i < len(in.Weight) && in.Weight[i] > 0 {
				w[u] += in.Weight[i]
			} else {
				w[u] += 1
			}
		}
		total += w[u]
		start = end
	}

	// Walk units in order, cutting to the next shard when the running sum
	// crosses the ideal boundary — whichever side of the boundary is
	// closer — while leaving enough units for the remaining shards.
	sh, used := 0, 0 // current shard, units consumed
	var acc float64
	start = 0
	for u, end := range unitEnd {
		if sh < k-1 && used > 0 {
			unitsLeft := len(unitEnd) - u // including u
			shardsAfter := k - 1 - sh     // shards beyond the current one
			// Forced cut: just enough units remain to give every later
			// shard one. Otherwise cut when the running sum is closer to
			// the ideal boundary before this unit than after it.
			mustCut := unitsLeft <= shardsAfter
			boundary := total * float64(sh+1) / float64(k)
			wantCut := acc >= boundary || (acc+w[u])-boundary > boundary-acc
			if mustCut || wantCut {
				sh++
				used = 0
			}
		}
		for i := start; i < end; i++ {
			domainOf[i] = sh
		}
		acc += w[u]
		used++
		start = end
	}
	return domainOf, sh + 1
}

// SplitsBoard reports whether the partition places two nodes of one board
// on different shards. Callers use it to pick the lookahead bound: an
// unsplit partition's minimum cross-shard latency is the inter-board
// latency; a split partition must fall back to the intra-board latency.
func SplitsBoard(domainOf, boardOf []int) bool {
	for i := 1; i < len(domainOf); i++ {
		if boardOf[i] == boardOf[i-1] && domainOf[i] != domainOf[i-1] {
			return true
		}
	}
	// Contiguous bands make the adjacent check sufficient for the machine
	// model's monotone board layout; guard the general case too.
	if len(domainOf) != len(boardOf) {
		return false
	}
	seen := map[int]int{}
	for i, b := range boardOf {
		if sh, ok := seen[b]; ok && sh != domainOf[i] {
			return true
		}
		seen[b] = domainOf[i]
	}
	return false
}
