package sim

// eventHeap is a 4-ary min-heap of events ordered by (time, sequence). The
// sequence tiebreak guarantees deterministic ordering of simultaneous events:
// earlier-scheduled events fire first.
//
// A 4-ary layout halves the tree depth of a binary heap, so sifts touch
// fewer cache lines, and both sift paths move a "hole" instead of swapping:
// each level costs one pointer store rather than three.
type eventHeap struct {
	items []*event
}

func (h *eventHeap) len() int { return len(h.items) }

// top returns the earliest event without removing it, or nil if empty.
func (h *eventHeap) top() *event {
	if len(h.items) == 0 {
		return nil
	}
	return h.items[0]
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) push(e *event) {
	i := len(h.items)
	h.items = append(h.items, nil)
	// Sift the hole up: parents slide down until e's slot is found.
	for i > 0 {
		parent := (i - 1) / 4
		p := h.items[parent]
		if !eventLess(e, p) {
			break
		}
		h.items[i] = p
		i = parent
	}
	h.items[i] = e
}

// pop removes and returns the earliest event, or nil if the heap is empty.
func (h *eventHeap) pop() *event {
	n := len(h.items)
	if n == 0 {
		return nil
	}
	top := h.items[0]
	n--
	last := h.items[n]
	h.items[n] = nil
	h.items = h.items[:n]
	if n > 0 {
		// Sift the hole down from the root: the smallest child slides up
		// until `last` fits.
		i := 0
		for {
			first := 4*i + 1
			if first >= n {
				break
			}
			min := first
			mv := h.items[first]
			end := first + 4
			if end > n {
				end = n
			}
			for j := first + 1; j < end; j++ {
				if eventLess(h.items[j], mv) {
					min, mv = j, h.items[j]
				}
			}
			if !eventLess(mv, last) {
				break
			}
			h.items[i] = mv
			i = min
		}
		h.items[i] = last
	}
	return top
}
