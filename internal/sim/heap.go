package sim

// eventHeap is a binary min-heap of events ordered by (time, sequence). The
// sequence tiebreak guarantees deterministic ordering of simultaneous events:
// earlier-scheduled events fire first.
type eventHeap struct {
	items []*event
}

func (h *eventHeap) len() int { return len(h.items) }

func (h *eventHeap) less(i, j int) bool {
	a, b := h.items[i], h.items[j]
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *eventHeap) swap(i, j int) { h.items[i], h.items[j] = h.items[j], h.items[i] }

func (h *eventHeap) push(e *event) {
	h.items = append(h.items, e)
	h.up(len(h.items) - 1)
}

// pop removes and returns the earliest event, or nil if the heap is empty.
func (h *eventHeap) pop() *event {
	if len(h.items) == 0 {
		return nil
	}
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items[last] = nil
	h.items = h.items[:last]
	if last > 0 {
		h.down(0)
	}
	return top
}

func (h *eventHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *eventHeap) down(i int) {
	n := len(h.items)
	for {
		left := 2*i + 1
		if left >= n {
			break
		}
		smallest := left
		if right := left + 1; right < n && h.less(right, left) {
			smallest = right
		}
		if !h.less(smallest, i) {
			break
		}
		h.swap(i, smallest)
		i = smallest
	}
}
