// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and executes logical processes, each of
// which runs as a goroutine but is cooperatively scheduled so that exactly one
// process executes at a time. All timing reported by the SAGE reproduction
// (experiments, benchmarks, the visualizer timeline) is virtual time produced
// by this kernel, which makes every experiment bit-reproducible on any host.
//
// Processes interact with the kernel through the Proc handle passed to their
// body: they sleep for virtual durations, exchange values over Chan mailboxes,
// and contend for Resource capacity. Events that tie at the same virtual time
// are ordered by scheduling sequence number, so runs are fully deterministic.
//
// # Trace hook contract
//
// A Tracer installed with Kernel.SetTracer observes the kernel without
// perturbing it. The contract its implementations can rely on — and must
// honour — is:
//
//   - Hooks are invoked synchronously while exactly one goroutine of the
//     simulation is executing (the kernel loop or the currently dispatched
//     process), so implementations need no locking as long as each Tracer
//     serves a single kernel.
//   - Virtual time is frozen for the duration of a hook; the timestamps
//     passed in equal Kernel.Now() at the instant of the call, and hooks may
//     call the kernel's read-only accessors (Now, Pending, LiveProcs,
//     Dispatched) freely. Instrumentation must use these accessors rather
//     than reach into kernel internals.
//   - Hooks must not call back into scheduling operations: no Spawn, After,
//     Stop, Shutdown, channel or resource operations. Tracing observes; it
//     never advances the simulation, so enabling it cannot change any
//     simulated result.
//   - Waits are reported on completion (when the blocked process resumes),
//     with both endpoints of the blocked interval. Sleeps are not reported:
//     they are scheduled work, not contention.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a virtual time span. It aliases time.Duration so the standard
// unit constants (time.Microsecond etc.) can be used when building models.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the timestamp using time.Duration notation.
func (t Time) String() string { return Duration(t).String() }

// Tracer receives kernel-level trace callbacks. See the package
// documentation ("Trace hook contract") for the rules hooks run under.
// internal/trace.Collector is the standard implementation.
type Tracer interface {
	// ProcStart fires when a process's body is about to begin executing.
	ProcStart(pid int, name string, at Time)
	// ProcEnd fires when a process finishes (or is torn down by Shutdown).
	ProcEnd(pid int, name string, at Time)
	// Wait fires when a process resumes after blocking for a non-zero
	// virtual duration. kind is "recv" (channel), "acquire" (resource) or
	// "barrier"; object is the blocking primitive's name; queueDepth is the
	// number of parties already queued when the wait began (0 where not
	// applicable).
	Wait(pid int, proc, kind, object string, from, to Time, queueDepth int)
	// ChanOp fires on every mailbox delivery ("send") and receipt ("recv")
	// with the post-operation queue length. High frequency; collectors
	// typically ignore it unless verbose.
	ChanOp(op, name string, qlen int, at Time)
	// ResourceOp fires on every resource "acquire" and "release" with the
	// post-operation units in use and waiter-queue depth. High frequency;
	// collectors typically ignore it unless verbose.
	ResourceOp(op, name string, inUse, capacity, queued int, at Time)
}

// event is a scheduled callback in the kernel's queue.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// Kernel is a sequential discrete-event simulator.
//
// A kernel and everything attached to it (processes, channels, resources)
// belong to one goroutine: the one that calls Run. Distinct kernels share no
// state, so independent simulations may run concurrently, one kernel per
// goroutine — this is what the parallel experiment engine does.
//
// The zero value is not usable; create kernels with NewKernel.
type Kernel struct {
	now     Time
	queue   eventHeap
	seq     uint64
	park    chan struct{} // running process parked or finished
	dead    chan struct{} // closed by Shutdown: kernel will never dispatch again
	running *Proc
	procs   map[*Proc]struct{}
	nextPID int
	stopped bool
	tracef  func(format string, args ...any)
	tracer  Tracer
	// dispatched counts events executed by Run across the kernel's
	// lifetime; exposed through Dispatched for trace collectors.
	dispatched uint64
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{
		park:  make(chan struct{}),
		dead:  make(chan struct{}),
		procs: make(map[*Proc]struct{}),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetTrace installs a debug trace function (nil disables tracing).
func (k *Kernel) SetTrace(f func(format string, args ...any)) { k.tracef = f }

// SetTracer installs a structured trace hook (nil disables structured
// tracing). See the package documentation for the hook contract. Install the
// tracer before Run; one tracer serves one kernel.
func (k *Kernel) SetTracer(tr Tracer) { k.tracer = tr }

// Dispatched reports the number of events the kernel has executed. It is one
// of the read-only accessors trace hooks may call (see the trace hook
// contract).
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

func (k *Kernel) trace(format string, args ...any) {
	if k.tracef != nil {
		k.tracef(format, args...)
	}
}

// schedule enqueues fn to run at time at. It panics if at precedes the clock,
// since the kernel can never travel backwards.
func (k *Kernel) schedule(at Time, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	k.seq++
	k.queue.push(&event{at: at, seq: k.seq, fn: fn})
}

// After schedules fn to run after virtual duration d. It may be called from
// process context or from event callbacks.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now.Add(d), fn)
}

// Proc is the handle through which a logical process interacts with the
// kernel. A Proc is only valid inside the body function it was created with.
type Proc struct {
	k       *Kernel
	pid     int
	name    string
	resume  chan struct{}
	started bool // the start event fired: a goroutine exists for this proc
	killed  bool // Shutdown marked this proc for termination
	done    bool
	// blockedOn describes what the process is waiting for; used in the
	// deadlock report produced by Run.
	blockedOn string
}

// killSentinel is the panic value Shutdown uses to unwind a parked process
// goroutine through its yield points; the spawn wrapper recovers it.
type killSentinel struct{}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// PID returns the unique process id.
func (p *Proc) PID() int { return p.pid }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// Spawn creates a process executing body, scheduled to start at the current
// virtual time. Spawn may be called before Run or from inside a running
// process or event callback.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{k: k, pid: k.nextPID, name: name, resume: make(chan struct{})}
	k.nextPID++
	k.procs[p] = struct{}{}
	k.schedule(k.now, func() {
		p.started = true
		go func() {
			defer func() {
				if r := recover(); r != nil {
					if _, ok := r.(killSentinel); !ok {
						panic(r)
					}
				}
				p.done = true
				delete(k.procs, p)
				if k.tracer != nil {
					k.tracer.ProcEnd(p.pid, p.name, k.now)
				}
				k.parkOrDie()
			}()
			<-p.resume
			if p.killed {
				panic(killSentinel{})
			}
			body(p)
		}()
		if k.tracer != nil {
			k.tracer.ProcStart(p.pid, p.name, k.now)
		}
		k.dispatch(p)
	})
	return p
}

// dispatch transfers control to p and waits for it to park again.
func (k *Kernel) dispatch(p *Proc) {
	prev := k.running
	k.running = p
	p.blockedOn = ""
	p.resume <- struct{}{}
	<-k.park
	k.running = prev
}

// parkOrDie signals the kernel that the running process has parked or
// finished. After Shutdown, nothing will ever receive on park again, so a
// completion racing the teardown becomes a no-op instead of a wedged
// goroutine.
func (k *Kernel) parkOrDie() {
	select {
	case k.park <- struct{}{}:
	case <-k.dead:
	}
}

// yield parks the running process, returning control to the kernel loop. The
// process resumes when some event calls wake, or terminates (by sentinel
// panic, recovered in the spawn wrapper) when Shutdown tears the kernel
// down.
func (p *Proc) yield(blockedOn string) {
	p.blockedOn = blockedOn
	p.k.parkOrDie()
	select {
	case <-p.resume:
	case <-p.k.dead:
		panic(killSentinel{})
	}
	if p.killed {
		panic(killSentinel{})
	}
}

// wake schedules p to resume at time at. Dispatching a finished or killed
// process would block the kernel forever, so the event re-checks liveness at
// fire time (a stale wake for a process that has since completed — or that a
// Shutdown tore down — is dropped).
func (k *Kernel) wake(p *Proc, at Time) {
	k.schedule(at, func() {
		if p.done || p.killed {
			return
		}
		k.dispatch(p)
	})
}

// Sleep suspends the process for virtual duration d. Negative durations are
// treated as zero (the process still yields, preserving scheduling order).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.wake(p, p.k.now.Add(d))
	p.yield(fmt.Sprintf("sleep %v", d))
}

// SleepUntil suspends the process until virtual time t (no-op if t is in the
// past, though the process still yields).
func (p *Proc) SleepUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.wake(p, t)
	p.yield(fmt.Sprintf("sleep-until %v", t))
}

// DeadlockError is returned by Run when processes remain blocked but no
// events are pending, i.e. virtual time can no longer advance.
type DeadlockError struct {
	At      Time
	Blocked []string // "name(pid): reason" for each blocked process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v with %d blocked process(es): %v", e.At, len(e.Blocked), e.Blocked)
}

// Run executes events until the queue drains or Stop is called. It returns a
// *DeadlockError if live processes remain blocked when the queue empties, and
// nil otherwise. Run must not be called re-entrantly, and not after Shutdown.
func (k *Kernel) Run() error {
	if k.isDead() {
		return fmt.Errorf("sim: Run on a kernel that has been shut down")
	}
	k.stopped = false
	for !k.stopped {
		ev := k.queue.pop()
		if ev == nil {
			break
		}
		if ev.at < k.now {
			panic("sim: event queue returned time in the past")
		}
		k.now = ev.at
		k.dispatched++
		ev.fn()
	}
	if len(k.procs) > 0 && !k.stopped {
		var blocked []string
		for p := range k.procs {
			blocked = append(blocked, fmt.Sprintf("%s(%d): %s", p.name, p.pid, p.blockedOn))
		}
		sort.Strings(blocked)
		return &DeadlockError{At: k.now, Blocked: blocked}
	}
	return nil
}

// Stop halts Run after the current event completes. Processes keep their
// state; Run may not be resumed after Stop (create a fresh kernel instead).
func (k *Kernel) Stop() { k.stopped = true }

// isDead reports whether Shutdown has completed.
func (k *Kernel) isDead() bool {
	select {
	case <-k.dead:
		return true
	default:
		return false
	}
}

// Shutdown releases every process goroutine still parked in the kernel and
// marks the kernel dead. Run leaves blocked processes parked when it returns
// a DeadlockError or is halted by Stop; without Shutdown each of those
// processes is a leaked goroutine, which matters when thousands of kernels
// are created over a program's lifetime (the experiment engine runs one per
// simulation). Shutdown wakes each live process with a terminal signal — a
// sentinel panic raised at its current yield point and recovered in the
// spawn wrapper — in PID order, so teardown is deterministic.
//
// Call Shutdown from the goroutine that called Run, after Run has returned.
// It is idempotent, safe on a kernel that ran to completion (no live
// processes), and safe on a kernel that never ran. After Shutdown the
// kernel is dead: Run returns an error and no process will ever be
// dispatched again.
func (k *Kernel) Shutdown() {
	if k.isDead() {
		return
	}
	k.stopped = true
	live := make([]*Proc, 0, len(k.procs))
	for p := range k.procs {
		if p.started {
			live = append(live, p)
		} else {
			// The start event never fired, so no goroutine exists; the
			// process just vanishes from the books.
			p.done = true
			delete(k.procs, p)
		}
	}
	sort.Slice(live, func(i, j int) bool { return live[i].pid < live[j].pid })
	for _, p := range live {
		p.killed = true
		p.resume <- struct{}{} // proc panics with the sentinel and unwinds
		<-k.park               // its spawn wrapper confirms the exit
	}
	close(k.dead)
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.queue.len() }

// LiveProcs reports the number of processes that have been spawned and have
// not finished.
func (k *Kernel) LiveProcs() int { return len(k.procs) }
