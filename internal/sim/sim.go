// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and executes logical processes, each of
// which runs as a goroutine but is cooperatively scheduled so that exactly one
// process executes at a time. All timing reported by the SAGE reproduction
// (experiments, benchmarks, the visualizer timeline) is virtual time produced
// by this kernel, which makes every experiment bit-reproducible on any host.
//
// Processes interact with the kernel through the Proc handle passed to their
// body: they sleep for virtual durations, exchange values over Chan mailboxes,
// and contend for Resource capacity. Events that tie at the same virtual time
// are ordered by scheduling sequence number, so runs are fully deterministic.
//
// # Fast path
//
// The hot path is allocation- and switch-free wherever the event order
// allows (see DESIGN.md §7 for the full story):
//
//   - Event nodes are pooled on an intrusive free list; steady-state
//     scheduling performs no heap allocation.
//   - Events due at the current instant bypass the time heap through a FIFO
//     fast lane; only future events pay the (4-ary) heap.
//   - The scheduler token is handed directly from process to process: the
//     goroutine that blocks runs the event loop itself and resumes the next
//     process with a single channel send, instead of bouncing control
//     through a central loop. A process woken at the instant it blocked
//     continues without any channel operation at all. Dispatch order is
//     identical to a central loop's because all holders pop the same queue.
//
// # Trace hook contract
//
// A Tracer installed with Kernel.SetTracer observes the kernel without
// perturbing it. The contract its implementations can rely on — and must
// honour — is:
//
//   - Hooks are invoked synchronously while exactly one goroutine of the
//     simulation is executing (the scheduler-token holder: the kernel loop
//     or the currently dispatched process), so implementations need no
//     locking as long as each Tracer serves a single kernel.
//   - Virtual time is frozen for the duration of a hook; the timestamps
//     passed in equal Kernel.Now() at the instant of the call, and hooks may
//     call the kernel's read-only accessors (Now, Pending, LiveProcs,
//     Dispatched) freely. Instrumentation must use these accessors rather
//     than reach into kernel internals.
//   - Hooks must not call back into scheduling operations: no Spawn, After,
//     Stop, Shutdown, channel or resource operations. Tracing observes; it
//     never advances the simulation, so enabling it cannot change any
//     simulated result.
//   - Waits are reported on completion (when the blocked process resumes),
//     with both endpoints of the blocked interval. Sleeps are not reported:
//     they are scheduled work, not contention.
package sim

import (
	"fmt"
	"sort"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since simulation start.
type Time int64

// Duration is a virtual time span. It aliases time.Duration so the standard
// unit constants (time.Microsecond etc.) can be used when building models.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the timestamp using time.Duration notation.
func (t Time) String() string { return Duration(t).String() }

// Tracer receives kernel-level trace callbacks. See the package
// documentation ("Trace hook contract") for the rules hooks run under.
// internal/trace.Collector is the standard implementation.
type Tracer interface {
	// ProcStart fires when a process's body is about to begin executing.
	ProcStart(pid int, name string, at Time)
	// ProcEnd fires when a process finishes (or is torn down by Shutdown).
	ProcEnd(pid int, name string, at Time)
	// Wait fires when a process resumes after blocking for a non-zero
	// virtual duration. kind is "recv" (channel), "acquire" (resource) or
	// "barrier"; object is the blocking primitive's name; queueDepth is the
	// number of parties already queued when the wait began (0 where not
	// applicable).
	Wait(pid int, proc, kind, object string, from, to Time, queueDepth int)
	// ChanOp fires on every mailbox delivery ("send") and receipt ("recv")
	// with the post-operation queue length. High frequency; collectors
	// typically ignore it unless verbose.
	ChanOp(op, name string, qlen int, at Time)
	// ResourceOp fires on every resource "acquire" and "release" with the
	// post-operation units in use and waiter-queue depth. High frequency;
	// collectors typically ignore it unless verbose.
	ResourceOp(op, name string, inUse, capacity, queued int, at Time)
}

// event is a scheduled entry in the kernel's queue: either a callback (fn)
// or a process wake/start (proc). Nodes are recycled through the kernel's
// intrusive free list; next links both the free list and the same-time FIFO
// lane.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
	next *event
}

// Kernel is a sequential discrete-event simulator.
//
// A kernel and everything attached to it (processes, channels, resources)
// belong to one goroutine: the one that calls Run. Distinct kernels share no
// state, so independent simulations may run concurrently, one kernel per
// goroutine — this is what the parallel experiment engine does.
//
// Internally exactly one goroutine at a time holds the scheduler token and
// mutates kernel state; every token transfer is a channel handoff, so all
// accesses are ordered even under the race detector.
//
// The zero value is not usable; create kernels with NewKernel.
type Kernel struct {
	now   Time
	queue eventHeap
	// fifoHead/fifoTail hold events due at the current instant, in seq
	// order. Invariant: every queued FIFO event has at == now (the clock
	// cannot advance while the lane is non-empty, because its head always
	// sorts before any strictly-future heap entry).
	fifoHead *event
	fifoTail *event
	fifoLen  int
	free     *event // recycled event nodes, linked through next
	seq      uint64
	park     chan struct{} // scheduler token returned to Run (or Shutdown)
	dead     chan struct{} // closed by Shutdown: kernel will never dispatch again
	running  *Proc
	procs    []*Proc // live processes in spawn (= PID) order
	nextPID  int
	stopped  bool
	tracef   func(format string, args ...any)
	tracer   Tracer
	// dispatched counts events executed across the kernel's lifetime;
	// exposed through Dispatched for trace collectors.
	dispatched uint64
	// Cancellation poll (SetCancel): every cancelEvery dispatched events the
	// loop polls cancelCh; a closed channel stops the kernel like Stop.
	cancelCh    <-chan struct{}
	cancelEvery uint64
	cancelLeft  uint64
	canceled    bool
}

// NewKernel returns an empty kernel with the clock at zero.
func NewKernel() *Kernel {
	return &Kernel{
		park: make(chan struct{}),
		dead: make(chan struct{}),
	}
}

// Now reports the current virtual time.
func (k *Kernel) Now() Time { return k.now }

// SetTrace installs a debug trace function (nil disables tracing).
func (k *Kernel) SetTrace(f func(format string, args ...any)) { k.tracef = f }

// SetTracer installs a structured trace hook (nil disables structured
// tracing). See the package documentation for the hook contract. Install the
// tracer before Run; one tracer serves one kernel.
func (k *Kernel) SetTracer(tr Tracer) { k.tracer = tr }

// Dispatched reports the number of events the kernel has executed. It is one
// of the read-only accessors trace hooks may call (see the trace hook
// contract).
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

func (k *Kernel) trace(format string, args ...any) {
	if k.tracef != nil {
		k.tracef(format, args...)
	}
}

// alloc takes an event node off the free list (or allocates one) and stamps
// it with the next sequence number.
func (k *Kernel) alloc(at Time) *event {
	ev := k.free
	if ev != nil {
		k.free = ev.next
		ev.next = nil
	} else {
		ev = &event{}
	}
	k.seq++
	ev.at = at
	ev.seq = k.seq
	return ev
}

// release returns a fired event node to the free list. Callers must have
// copied fn/proc out first.
func (k *Kernel) release(ev *event) {
	ev.fn = nil
	ev.proc = nil
	ev.next = k.free
	k.free = ev
}

// enqueue routes an event to the same-time FIFO lane (due now) or the time
// heap (due later).
func (k *Kernel) enqueue(ev *event) {
	if ev.at == k.now {
		if k.fifoTail == nil {
			k.fifoHead = ev
		} else {
			k.fifoTail.next = ev
		}
		k.fifoTail = ev
		k.fifoLen++
		return
	}
	k.queue.push(ev)
}

// popEvent removes the globally earliest event by (time, seq), merging the
// FIFO lane with the heap. A heap entry can tie the FIFO head's time only
// with a smaller sequence number (it was scheduled before the clock reached
// now), so the comparison preserves exact scheduling order.
func (k *Kernel) popEvent() *event {
	if f := k.fifoHead; f != nil {
		if t := k.queue.top(); t == nil || eventLess(f, t) {
			k.fifoHead = f.next
			if k.fifoHead == nil {
				k.fifoTail = nil
			}
			f.next = nil
			k.fifoLen--
			return f
		}
	}
	return k.queue.pop()
}

// schedule enqueues fn to run at time at. It panics if at precedes the clock,
// since the kernel can never travel backwards.
func (k *Kernel) schedule(at Time, fn func()) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	ev := k.alloc(at)
	ev.fn = fn
	k.enqueue(ev)
}

// After schedules fn to run after virtual duration d. It may be called from
// process context or from event callbacks.
func (k *Kernel) After(d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	k.schedule(k.now.Add(d), fn)
}

// Proc is the handle through which a logical process interacts with the
// kernel. A Proc is only valid inside the body function it was created with.
type Proc struct {
	k       *Kernel
	pid     int
	name    string
	resume  chan struct{}
	body    func(p *Proc)
	started bool // the start event fired: a goroutine exists for this proc
	killed  bool // Shutdown marked this proc for termination
	done    bool
	// blockedVerb/blockedObj describe what the process is waiting for
	// ("recv" + channel name, "acquire" + resource name, ...); kept as two
	// fields so blocking never formats a string. Only the deadlock report
	// produced by Run renders them.
	blockedVerb string
	blockedObj  string
	// rw is the process's reusable resource-wait queue entry; a process
	// waits on at most one Resource at a time, so one embedded node
	// replaces a per-wait allocation.
	rw resWaiter
}

// killSentinel is the panic value Shutdown uses to unwind a parked process
// goroutine through its yield points; the spawn wrapper recovers it.
type killSentinel struct{}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// PID returns the unique process id.
func (p *Proc) PID() int { return p.pid }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports current virtual time.
func (p *Proc) Now() Time { return p.k.now }

// blockedReason renders the deadlock-report description of what the process
// is waiting on.
func (p *Proc) blockedReason() string {
	if p.blockedVerb == "" {
		return ""
	}
	if p.blockedObj == "" {
		return p.blockedVerb
	}
	return p.blockedVerb + " " + p.blockedObj
}

// Spawn creates a process executing body, scheduled to start at the current
// virtual time. Spawn may be called before Run or from inside a running
// process or event callback.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	p := &Proc{k: k, pid: k.nextPID, name: name, resume: make(chan struct{}), body: body}
	k.nextPID++
	k.procs = append(k.procs, p)
	ev := k.alloc(k.now)
	ev.proc = p
	k.enqueue(ev)
	return p
}

// main is the goroutine body of a spawned process. It waits for its first
// dispatch, runs the user body, and on exit — normal return or Shutdown's
// sentinel — keeps the event loop going with the scheduler token it holds.
func (p *Proc) main() {
	k := p.k
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok {
				panic(r)
			}
		}
		p.done = true
		k.removeProc(p)
		if k.tracer != nil {
			k.tracer.ProcEnd(p.pid, p.name, k.now)
		}
		// The dying process still holds the scheduler token: either pass
		// it on by advancing the event loop, or hand it back to Run.
		if k.advance(nil) != advHanded {
			k.parkOrDie()
		}
	}()
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	body := p.body
	p.body = nil
	body(p)
}

// removeProc drops p from the live-process slice (spawn order preserved).
func (k *Kernel) removeProc(p *Proc) {
	for i, q := range k.procs {
		if q == p {
			k.procs = append(k.procs[:i], k.procs[i+1:]...)
			return
		}
	}
}

// advResult reports how a call to advance relinquished (or kept) the
// scheduler token.
type advResult int

const (
	// advDrained: the queue emptied or Stop was called; the caller still
	// holds the token and must return it to Run if it is a process.
	advDrained advResult = iota
	// advHanded: the token was transferred to another process via its
	// resume channel; the caller no longer owns kernel state.
	advHanded
	// advSelf: the calling process's own wake event fired; it keeps the
	// token and simply continues executing.
	advSelf
)

// advance runs the event loop on behalf of the current scheduler-token
// holder (self, or nil for the Run goroutine). Callback events execute
// inline; a wake or start event for another process hands the token over
// with a single channel send — the direct switch that replaces the classic
// park-then-dispatch round trip. Dispatch order is identical to a central
// loop's because every holder pops the same (time, seq)-ordered queue.
func (k *Kernel) advance(self *Proc) advResult {
	for !k.stopped {
		ev := k.popEvent()
		if ev == nil {
			return advDrained
		}
		if ev.at < k.now {
			panic("sim: event queue returned time in the past")
		}
		k.now = ev.at
		k.dispatched++
		if k.cancelCh != nil {
			if k.cancelLeft--; k.cancelLeft == 0 {
				k.cancelLeft = k.cancelEvery
				select {
				case <-k.cancelCh:
					k.canceled = true
					k.stopped = true
				default:
				}
			}
		}
		p, fn := ev.proc, ev.fn
		k.release(ev)
		if p == nil {
			fn()
			continue
		}
		if !p.started {
			p.started = true
			go p.main()
			if k.tracer != nil {
				k.tracer.ProcStart(p.pid, p.name, k.now)
			}
			k.running = p
			p.resume <- struct{}{}
			return advHanded
		}
		// Dispatching a finished or killed process would block forever, so
		// liveness is re-checked at fire time (a stale wake for a process
		// that has since completed — or that Shutdown tore down — is
		// dropped).
		if p.done || p.killed {
			continue
		}
		p.blockedVerb, p.blockedObj = "", ""
		k.running = p
		if p == self {
			return advSelf
		}
		p.resume <- struct{}{}
		return advHanded
	}
	return advDrained
}

// parkOrDie returns the scheduler token to the goroutine blocked in Run (or
// Shutdown). After Shutdown, nothing will ever receive on park again, so a
// completion racing the teardown becomes a no-op instead of a wedged
// goroutine.
func (k *Kernel) parkOrDie() {
	select {
	case k.park <- struct{}{}:
	case <-k.dead:
	}
}

// yield blocks the running process until some event wakes it, recording what
// it waits on for the deadlock report. The process first runs the event loop
// itself: if its own wake fires at the current instant it returns without
// any goroutine switch; otherwise it hands the scheduler token on (to the
// next process directly, or back to Run when the queue drains) and parks. It
// terminates (by sentinel panic, recovered in the spawn wrapper) when
// Shutdown tears the kernel down.
func (p *Proc) yield(verb, obj string) {
	p.blockedVerb, p.blockedObj = verb, obj
	k := p.k
	switch k.advance(p) {
	case advSelf:
		return // woken at the same instant: zero channel operations
	case advDrained:
		k.parkOrDie()
	case advHanded:
		// token moved to another process; our wake will hand it back
	}
	select {
	case <-p.resume:
	case <-k.dead:
		panic(killSentinel{})
	}
	if p.killed {
		panic(killSentinel{})
	}
}

// wake schedules p to resume at time at.
func (k *Kernel) wake(p *Proc, at Time) {
	if at < k.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, k.now))
	}
	ev := k.alloc(at)
	ev.proc = p
	k.enqueue(ev)
}

// Sleep suspends the process for virtual duration d. Negative durations are
// treated as zero (the process still yields, preserving scheduling order).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.k.wake(p, p.k.now.Add(d))
	p.yield("sleep", "")
}

// SleepUntil suspends the process until virtual time t (no-op if t is in the
// past, though the process still yields).
func (p *Proc) SleepUntil(t Time) {
	if t < p.k.now {
		t = p.k.now
	}
	p.k.wake(p, t)
	p.yield("sleep-until", "")
}

// DeadlockError is returned by Run when processes remain blocked but no
// events are pending, i.e. virtual time can no longer advance.
type DeadlockError struct {
	At      Time
	Blocked []string // "name(pid): reason" for each blocked process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v with %d blocked process(es): %v", e.At, len(e.Blocked), e.Blocked)
}

// Run executes events until the queue drains or Stop is called. It returns a
// *DeadlockError if live processes remain blocked when the queue empties, and
// nil otherwise. Run must not be called re-entrantly, and not after Shutdown.
func (k *Kernel) Run() error {
	if k.isDead() {
		return fmt.Errorf("sim: Run on a kernel that has been shut down")
	}
	k.stopped = false
	if k.advance(nil) == advHanded {
		// The token is cascading from process to process; it comes back
		// here when the queue drains or Stop fires.
		<-k.park
	}
	k.running = nil
	if len(k.procs) > 0 && !k.stopped {
		blocked := make([]string, 0, len(k.procs))
		for _, p := range k.procs {
			blocked = append(blocked, fmt.Sprintf("%s(%d): %s", p.name, p.pid, p.blockedReason()))
		}
		sort.Strings(blocked)
		return &DeadlockError{At: k.now, Blocked: blocked}
	}
	return nil
}

// Stop halts Run after the current event completes. Processes keep their
// state; Run may not be resumed after Stop (create a fresh kernel instead).
func (k *Kernel) Stop() { k.stopped = true }

// DefaultCancelEvery is the dispatch-count poll interval SetCancel uses when
// given a non-positive interval: frequent enough that a runaway simulation
// reacts to cancellation within microseconds of wall time, sparse enough
// that the per-event cost is a predictable branch.
const DefaultCancelEvery = 8192

// SetCancel installs a cancellation source: every `every` dispatched events
// the kernel polls ch, and if it is closed (or carries a value) the kernel
// halts exactly as if Stop had been called — the current event completes,
// processes keep their state, and Run returns. Canceled reports whether the
// poll fired. Cancellation is observed only between events, so it never
// changes any result a completed run reports: no extra events are
// scheduled, the clock is untouched, and Dispatched counts only real work.
// Combine with Shutdown to release the parked processes of an aborted run —
// the mid-run-abort contract long-lived servers rely on.
//
// Call before Run; every <= 0 selects DefaultCancelEvery; a nil ch disables
// polling.
func (k *Kernel) SetCancel(ch <-chan struct{}, every int) {
	k.cancelCh = ch
	if every <= 0 {
		every = DefaultCancelEvery
	}
	k.cancelEvery = uint64(every)
	k.cancelLeft = k.cancelEvery
}

// Canceled reports whether a SetCancel poll halted the kernel.
func (k *Kernel) Canceled() bool { return k.canceled }

// isDead reports whether Shutdown has completed.
func (k *Kernel) isDead() bool {
	select {
	case <-k.dead:
		return true
	default:
		return false
	}
}

// Shutdown releases every process goroutine still parked in the kernel and
// marks the kernel dead. Run leaves blocked processes parked when it returns
// a DeadlockError or is halted by Stop; without Shutdown each of those
// processes is a leaked goroutine, which matters when thousands of kernels
// are created over a program's lifetime (the experiment engine runs one per
// simulation). Shutdown wakes each live process with a terminal signal — a
// sentinel panic raised at its current yield point and recovered in the
// spawn wrapper — walking the live-process slice in spawn (= PID) order, so
// teardown, including its trace events, is reproducible.
//
// Call Shutdown from the goroutine that called Run, after Run has returned.
// It is idempotent, safe on a kernel that ran to completion (no live
// processes), and safe on a kernel that never ran. After Shutdown the
// kernel is dead: Run returns an error and no process will ever be
// dispatched again.
func (k *Kernel) Shutdown() {
	if k.isDead() {
		return
	}
	k.stopped = true
	live := make([]*Proc, 0, len(k.procs))
	for _, p := range k.procs {
		if p.started {
			live = append(live, p)
		} else {
			// The start event never fired, so no goroutine exists; the
			// process just vanishes from the books.
			p.done = true
		}
	}
	for _, p := range live {
		p.killed = true
		p.resume <- struct{}{} // proc panics with the sentinel and unwinds
		<-k.park               // its spawn wrapper confirms the exit
	}
	k.procs = nil
	close(k.dead)
}

// Pending reports the number of queued events.
func (k *Kernel) Pending() int { return k.queue.len() + k.fifoLen }

// LiveProcs reports the number of processes that have been spawned and have
// not finished.
func (k *Kernel) LiveProcs() int { return len(k.procs) }
