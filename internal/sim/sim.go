// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel advances a virtual clock and executes logical processes, each of
// which runs as a goroutine but is cooperatively scheduled so that exactly one
// process executes at a time. All timing reported by the SAGE reproduction
// (experiments, benchmarks, the visualizer timeline) is virtual time produced
// by this kernel, which makes every experiment bit-reproducible on any host.
//
// Processes interact with the kernel through the Proc handle passed to their
// body: they sleep for virtual durations, exchange values over Chan mailboxes,
// and contend for Resource capacity. Events that tie at the same virtual time
// are ordered by scheduling sequence number, so runs are fully deterministic.
//
// # Fast path
//
// The hot path is allocation- and switch-free wherever the event order
// allows (see DESIGN.md §7 for the full story):
//
//   - Event nodes are pooled on an intrusive free list; steady-state
//     scheduling performs no heap allocation.
//   - Events due at the current instant bypass the time heap through a FIFO
//     fast lane; only future events pay the (4-ary) heap.
//   - The scheduler token is handed directly from process to process: the
//     goroutine that blocks runs the event loop itself and resumes the next
//     process with a single channel send, instead of bouncing control
//     through a central loop. A process woken at the instant it blocked
//     continues without any channel operation at all. Dispatch order is
//     identical to a central loop's because all holders pop the same queue.
//
// # Sharded execution
//
// A kernel can be partitioned into K shards with SetShards: every scheduling
// domain (a machine-model node) is pinned to one shard, each shard owns a
// private event heap, FIFO lane and free list, and Run advances the shards
// concurrently inside conservative lookahead windows, exchanging cross-shard
// events through per-(src,dst) mailboxes at window barriers. A barrier-time
// sequencer replay re-assigns every event scheduled during the window the
// exact sequence number the sequential kernel would have used, so results,
// traces and dispatch counts are byte-identical to K=1 on every input. See
// DESIGN.md §12 for the algorithm and the determinism argument. With K=1
// (the default) none of the sharded machinery is active and the kernel runs
// the classic sequential fast path.
//
// # Trace hook contract
//
// A Tracer installed with Kernel.SetTracer observes the kernel without
// perturbing it. The contract its implementations can rely on — and must
// honour — is:
//
//   - Hooks are invoked synchronously while exactly one goroutine of the
//     simulation is executing (the scheduler-token holder: the kernel loop
//     or the currently dispatched process), so implementations need no
//     locking as long as each Tracer serves a single kernel. On a sharded
//     kernel this holds per shard: hooks fire on the per-shard child tracers
//     a ShardTracer provides, one executing goroutine per shard.
//   - Virtual time is frozen for the duration of a hook; the timestamps
//     passed in equal Kernel.Now() at the instant of the call, and hooks may
//     call the kernel's read-only accessors (Now, Pending, LiveProcs,
//     Dispatched) freely. Instrumentation must use these accessors rather
//     than reach into kernel internals. On a sharded kernel the accessors
//     are exact between windows and at run end, and at-least-last-barrier
//     fresh during a window.
//   - Hooks must not call back into scheduling operations: no Spawn, After,
//     Stop, Shutdown, channel or resource operations. Tracing observes; it
//     never advances the simulation, so enabling it cannot change any
//     simulated result.
//   - Waits are reported on completion (when the blocked process resumes),
//     with both endpoints of the blocked interval. Sleeps are not reported:
//     they are scheduled work, not contention.
package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Time is an absolute virtual timestamp in nanoseconds since simulation start.
type Time int64

// maxTime is the "no event / no horizon" sentinel: later than any real
// timestamp a simulation can reach.
const maxTime = Time(math.MaxInt64)

// Duration is a virtual time span. It aliases time.Duration so the standard
// unit constants (time.Microsecond etc.) can be used when building models.
type Duration = time.Duration

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration between t and u (t - u).
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds reports t as floating-point seconds.
func (t Time) Seconds() float64 { return float64(t) / 1e9 }

// String formats the timestamp using time.Duration notation.
func (t Time) String() string { return Duration(t).String() }

// Tracer receives kernel-level trace callbacks. See the package
// documentation ("Trace hook contract") for the rules hooks run under.
// internal/trace.Collector is the standard implementation.
type Tracer interface {
	// ProcStart fires when a process's body is about to begin executing.
	ProcStart(pid int, name string, at Time)
	// ProcEnd fires when a process finishes (or is torn down by Shutdown).
	ProcEnd(pid int, name string, at Time)
	// Wait fires when a process resumes after blocking for a non-zero
	// virtual duration. kind is "recv" (channel), "acquire" (resource) or
	// "barrier"; object is the blocking primitive's name; queueDepth is the
	// number of parties already queued when the wait began (0 where not
	// applicable).
	Wait(pid int, proc, kind, object string, from, to Time, queueDepth int)
	// ChanOp fires on every mailbox delivery ("send") and receipt ("recv")
	// with the post-operation queue length. High frequency; collectors
	// typically ignore it unless verbose.
	ChanOp(op, name string, qlen int, at Time)
	// ResourceOp fires on every resource "acquire" and "release" with the
	// post-operation units in use and waiter-queue depth. High frequency;
	// collectors typically ignore it unless verbose.
	ResourceOp(op, name string, inUse, capacity, queued int, at Time)
}

// event is a scheduled entry in a shard's queue: either a callback (fn)
// or a process wake/start (proc). Nodes are recycled through the shard's
// intrusive free list; next links both the free list and the same-time FIFO
// lane.
type event struct {
	at   Time
	seq  uint64
	fn   func()
	proc *Proc
	next *event
}

// dispatchRec is one entry of a shard's window dispatch log: enough to
// replay the window's dispatches in global sequential order at the barrier.
// seq is the event's sequence number at dispatch time (provisional if the
// event was scheduled during the window); allocs counts the provisional
// allocations the shard had made before this dispatch began, so the replay
// can attribute every window allocation to the dispatch that performed it.
type dispatchRec struct {
	at     Time
	seq    uint64
	allocs uint64
}

// shard is one scheduling domain partition of a kernel: a complete private
// event scheduler (heap, same-time FIFO lane, pooled free list, clock).
// An unsharded kernel is exactly one shard. All shard fields are owned by
// the single goroutine executing the shard (the scheduler-token holder)
// during a window, and by the coordinator (the Run goroutine) between
// windows; the window barrier channels order the ownership transfer, so no
// field needs a lock.
type shard struct {
	k  *Kernel
	id int

	now   Time
	queue eventHeap
	// fifoHead/fifoTail hold events due at the current instant, in seq
	// order. Invariant: every queued FIFO event has at == now (the clock
	// cannot advance while the lane is non-empty, because its head always
	// sorts before any strictly-future heap entry).
	fifoHead *event
	fifoTail *event
	fifoLen  int
	free     *event // recycled event nodes, linked through next
	// seq is the shard's sequence counter. Unsharded (and during the setup
	// and teardown phases of a sharded kernel) it is unused — allocations
	// draw from the kernel-global counter. During a parallel window it
	// counts provisional sequence numbers from base; the barrier replay
	// rewrites them to the exact sequential values.
	seq        uint64
	park       chan struct{} // scheduler token returned to the window driver
	running    *Proc
	stopped    bool
	dispatched uint64
	cancelLeft uint64
	tracer     Tracer // shard-routed trace hook (per-shard child when sharded)

	// Sharded-window state; see DESIGN.md §12.
	par     bool   // inside a parallel window
	horizon Time   // events at >= horizon stay queued this window
	base    uint64 // kernel seq at window start; seq > base ⇒ provisional
	log     []dispatchRec
	di      uint64     // index of the current dispatch in log (for tracers)
	outbox  [][]*event // cross-shard events by destination shard, this window
	outCnt  int
	next    Time          // next-event snapshot taken by the coordinator
	windowGo chan struct{} // window start signal for the shard worker

	// Barrier-published snapshots backing the kernel's concurrent-read
	// accessors while shards are executing.
	pubDispatched atomic.Uint64
	pubPending    atomic.Int64
	pubNow        atomic.Int64
}

// Kernel phases (sharded kernels only; unsharded kernels never leave 0).
const (
	phaseSetup int32 = iota
	phaseRun
	phasePost
)

// Kernel is a deterministic discrete-event simulator.
//
// A kernel and everything attached to it (processes, channels, resources)
// belong to one goroutine: the one that calls Run. Distinct kernels share no
// state, so independent simulations may run concurrently, one kernel per
// goroutine — this is what the parallel experiment engine does.
//
// Internally exactly one goroutine at a time holds a shard's scheduler token
// and mutates that shard's state; every token transfer is a channel handoff,
// so all accesses are ordered even under the race detector. An unsharded
// kernel has exactly one shard; SetShards partitions scheduling across
// several, with Run coordinating conservative lookahead windows (see the
// package documentation).
//
// The zero value is not usable; create kernels with NewKernel.
type Kernel struct {
	shards []*shard
	s0     *shard // shards[0]; the only shard when unsharded
	nsh    int
	seqG   uint64 // global sequence counter (authoritative between windows)

	shardOf   []int32 // scheduling domain -> shard index (nil when unsharded)
	lookahead Time    // min cross-shard event latency (sharded kernels only)
	phase     atomic.Int32

	dead    chan struct{} // closed by Shutdown: kernel will never dispatch again
	procs   []*Proc       // live processes in spawn (= PID) order
	procsMu sync.Mutex    // guards procs (procs end concurrently across shards)
	nextPID int
	tracef  func(format string, args ...any)
	tracer  Tracer
	// Cancellation poll (SetCancel): every cancelEvery dispatched events a
	// shard polls cancelCh; a closed channel stops the kernel like Stop.
	cancelCh    <-chan struct{}
	cancelEvery uint64
	canceled    atomic.Bool
	// globalStop broadcasts Stop/cancel across shard workers mid-window.
	globalStop atomic.Bool

	// Window coordination (sharded kernels only).
	windowDone chan struct{}
	workersUp  bool
	replay     refHeap
	order      []ShardDispatch
	trueOf     [][]uint64
	dispOf     [][]int32
}

// NewKernel returns an empty (single-shard) kernel with the clock at zero.
func NewKernel() *Kernel {
	k := &Kernel{dead: make(chan struct{})}
	s := &shard{k: k, park: make(chan struct{}), horizon: maxTime}
	k.s0 = s
	k.shards = []*shard{s}
	k.nsh = 1
	return k
}

// Now reports the current virtual time. On a sharded kernel mid-run this is
// the latest barrier-published shard clock; between windows and after Run it
// is exact (the maximum shard clock, which equals the sequential clock).
func (k *Kernel) Now() Time {
	if k.nsh == 1 {
		return k.s0.now
	}
	var max Time
	if k.phase.Load() == phaseRun {
		for _, s := range k.shards {
			if t := Time(s.pubNow.Load()); t > max {
				max = t
			}
		}
		return max
	}
	for _, s := range k.shards {
		if s.now > max {
			max = s.now
		}
	}
	return max
}

// SetTrace installs a debug trace function (nil disables tracing).
func (k *Kernel) SetTrace(f func(format string, args ...any)) { k.tracef = f }

// SetTracer installs a structured trace hook (nil disables structured
// tracing). See the package documentation for the hook contract. Install the
// tracer before Run; one tracer serves one kernel. A sharded kernel requires
// the tracer to also implement ShardTracer (internal/trace.Collector does).
func (k *Kernel) SetTracer(tr Tracer) {
	k.tracer = tr
	for _, s := range k.shards {
		s.tracer = tr
	}
}

// Dispatched reports the number of events the kernel has executed. It is one
// of the read-only accessors trace hooks may call (see the trace hook
// contract). On a sharded kernel mid-run the count is aggregated from the
// latest window barrier; between windows and after Run it is exact.
func (k *Kernel) Dispatched() uint64 {
	if k.nsh == 1 {
		return k.s0.dispatched
	}
	if k.phase.Load() == phaseRun {
		var n uint64
		for _, s := range k.shards {
			n += s.pubDispatched.Load()
		}
		return n
	}
	var n uint64
	for _, s := range k.shards {
		n += s.dispatched
	}
	return n
}

func (k *Kernel) trace(format string, args ...any) {
	if k.tracef != nil {
		k.tracef(format, args...)
	}
}

// alloc takes an event node off the shard's free list (or allocates one) and
// stamps it with the next sequence number: the kernel-global counter when
// the kernel is executing sequentially, the shard's provisional counter
// inside a parallel window (the barrier replay later rewrites provisional
// numbers to the exact sequential values).
func (s *shard) alloc(at Time) *event {
	ev := s.free
	if ev != nil {
		s.free = ev.next
		ev.next = nil
	} else {
		ev = &event{}
	}
	if s.par {
		s.seq++
		ev.seq = s.seq
	} else {
		s.k.seqG++
		ev.seq = s.k.seqG
	}
	ev.at = at
	return ev
}

// release returns a fired event node to the free list. Callers must have
// copied fn/proc out first.
func (s *shard) release(ev *event) {
	ev.fn = nil
	ev.proc = nil
	ev.next = s.free
	s.free = ev
}

// enqueue routes an event to the same-time FIFO lane (due now) or the time
// heap (due later).
func (s *shard) enqueue(ev *event) {
	if ev.at == s.now {
		if s.fifoTail == nil {
			s.fifoHead = ev
		} else {
			s.fifoTail.next = ev
		}
		s.fifoTail = ev
		s.fifoLen++
		return
	}
	s.queue.push(ev)
}

// popEvent removes the shard's earliest event by (time, seq), merging the
// FIFO lane with the heap, and refusing events at or beyond the window
// horizon (maxTime when unsharded, so the check never fires). A heap entry
// can tie the FIFO head's time only with a smaller sequence number (it was
// scheduled before the clock reached now), so the comparison preserves
// exact scheduling order. FIFO events are always dispatchable: their time
// equals the shard clock, which is strictly below the horizon.
func (s *shard) popEvent() *event {
	if f := s.fifoHead; f != nil {
		if t := s.queue.top(); t == nil || eventLess(f, t) {
			s.fifoHead = f.next
			if s.fifoHead == nil {
				s.fifoTail = nil
			}
			f.next = nil
			s.fifoLen--
			return f
		}
	}
	if t := s.queue.top(); t == nil || t.at >= s.horizon {
		return nil
	}
	return s.queue.pop()
}

// schedule enqueues fn to run at time at. It panics if at precedes the clock,
// since the kernel can never travel backwards.
func (s *shard) schedule(at Time, fn func()) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := s.alloc(at)
	ev.fn = fn
	s.enqueue(ev)
}

// After schedules fn to run after virtual duration d. It may be called from
// process context or from event callbacks. On a sharded kernel After has no
// way to know which shard the caller executes on, so it panics; use
// Proc.AfterOn (or Kernel.AfterOn before Run) instead.
func (k *Kernel) After(d Duration, fn func()) {
	if k.nsh > 1 {
		panic("sim: After on a sharded kernel needs a scheduling domain; use Proc.AfterOn or Kernel.AfterOn")
	}
	if d < 0 {
		d = 0
	}
	s := k.s0
	s.schedule(s.now.Add(d), fn)
}

// AfterOn schedules fn to run after virtual duration d on the shard owning
// the given scheduling domain. On an unsharded kernel it is identical to
// After. On a sharded kernel it may only be called before Run (setup phase);
// running processes must use Proc.AfterOn, which knows their shard.
func (k *Kernel) AfterOn(domain int, d Duration, fn func()) {
	if k.nsh > 1 && k.phase.Load() == phaseRun {
		panic("sim: Kernel.AfterOn during a sharded run; use Proc.AfterOn")
	}
	if d < 0 {
		d = 0
	}
	s := k.shardFor(domain)
	s.schedule(s.now.Add(d), fn)
}

// Proc is the handle through which a logical process interacts with the
// kernel. A Proc is only valid inside the body function it was created with.
type Proc struct {
	k       *Kernel
	sh      *shard // the shard this process is pinned to
	pid     int
	name    string
	resume  chan struct{}
	body    func(p *Proc)
	started bool // the start event fired: a goroutine exists for this proc
	killed  bool // Shutdown marked this proc for termination
	done    bool
	// blockedVerb/blockedObj describe what the process is waiting for
	// ("recv" + channel name, "acquire" + resource name, ...); kept as two
	// fields so blocking never formats a string. Only the deadlock report
	// produced by Run renders them.
	blockedVerb string
	blockedObj  string
	// rw is the process's reusable resource-wait queue entry; a process
	// waits on at most one Resource at a time, so one embedded node
	// replaces a per-wait allocation.
	rw resWaiter
}

// killSentinel is the panic value Shutdown uses to unwind a parked process
// goroutine through its yield points; the spawn wrapper recovers it.
type killSentinel struct{}

// Name returns the process name given at Spawn time.
func (p *Proc) Name() string { return p.name }

// PID returns the unique process id.
func (p *Proc) PID() int { return p.pid }

// Kernel returns the owning kernel.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports current virtual time (the clock of the process's shard, which
// is the kernel clock on an unsharded kernel).
func (p *Proc) Now() Time { return p.sh.now }

// AfterOn schedules fn to run after virtual duration d on the shard owning
// the given scheduling domain. Same-shard scheduling (including every call
// on an unsharded kernel) is the ordinary fast path. Cross-shard scheduling
// places the event in the window's outbound mailbox; the delay must be at
// least the kernel's lookahead — the cross-shard latency bound SetShards was
// given — or the conservative window algorithm would be unsound, so shorter
// delays panic.
func (p *Proc) AfterOn(domain int, d Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s := p.sh
	t := s.k.shardFor(domain)
	if t == s {
		s.schedule(s.now.Add(d), fn)
		return
	}
	if Time(d) < s.k.lookahead {
		panic(fmt.Sprintf("sim: cross-shard event delay %v under lookahead %v", d, Duration(s.k.lookahead)))
	}
	at := s.now.Add(d)
	ev := s.alloc(at)
	ev.fn = fn
	s.outbox[t.id] = append(s.outbox[t.id], ev)
	s.outCnt++
	// The destination may react to this event as soon as it lands, and that
	// reaction can reach back here after one more lookahead hop — so this
	// shard must not simulate past it (matters only when the static horizon
	// was unbounded because every other shard looked idle).
	if h := at + s.k.lookahead; h < s.horizon {
		s.horizon = h
	}
}

// blockedReason renders the deadlock-report description of what the process
// is waiting on.
func (p *Proc) blockedReason() string {
	if p.blockedVerb == "" {
		return ""
	}
	if p.blockedObj == "" {
		return p.blockedVerb
	}
	return p.blockedVerb + " " + p.blockedObj
}

// Spawn creates a process executing body, scheduled to start at the current
// virtual time. Spawn may be called before Run or from inside a running
// process or event callback. On a sharded kernel processes must be pinned
// with SpawnOn before Run; plain Spawn pins to shard 0 during setup and
// panics mid-run.
func (k *Kernel) Spawn(name string, body func(p *Proc)) *Proc {
	if k.nsh > 1 && k.phase.Load() == phaseRun {
		panic("sim: Spawn during a sharded run; spawn processes with SpawnOn before Run")
	}
	return k.spawnOn(k.s0, name, body)
}

// SpawnOn creates a process pinned to the shard owning the given scheduling
// domain, scheduled to start at that shard's current virtual time. On an
// unsharded kernel it is identical to Spawn. Processes cannot be spawned
// while a sharded kernel is running.
func (k *Kernel) SpawnOn(domain int, name string, body func(p *Proc)) *Proc {
	if k.nsh > 1 && k.phase.Load() == phaseRun {
		panic("sim: SpawnOn during a sharded run; spawn processes before Run")
	}
	return k.spawnOn(k.shardFor(domain), name, body)
}

func (k *Kernel) spawnOn(s *shard, name string, body func(p *Proc)) *Proc {
	p := &Proc{k: k, sh: s, pid: k.nextPID, name: name, resume: make(chan struct{}), body: body}
	k.nextPID++
	k.procs = append(k.procs, p)
	ev := s.alloc(s.now)
	ev.proc = p
	s.enqueue(ev)
	return p
}

// main is the goroutine body of a spawned process. It waits for its first
// dispatch, runs the user body, and on exit — normal return or Shutdown's
// sentinel — keeps the event loop going with the scheduler token it holds.
func (p *Proc) main() {
	s := p.sh
	defer func() {
		if r := recover(); r != nil {
			if _, ok := r.(killSentinel); !ok {
				panic(r)
			}
		}
		p.done = true
		p.k.removeProc(p)
		if s.tracer != nil {
			s.tracer.ProcEnd(p.pid, p.name, s.now)
		}
		// The dying process still holds the scheduler token: either pass
		// it on by advancing the event loop, or hand it back to the window
		// driver (Run, the shard worker, or Shutdown).
		if s.advance(nil) != advHanded {
			s.parkOrDie()
		}
	}()
	<-p.resume
	if p.killed {
		panic(killSentinel{})
	}
	body := p.body
	p.body = nil
	body(p)
}

// removeProc drops p from the live-process slice (spawn order preserved).
// Processes on different shards can finish concurrently, hence the lock.
func (k *Kernel) removeProc(p *Proc) {
	k.procsMu.Lock()
	for i, q := range k.procs {
		if q == p {
			k.procs = append(k.procs[:i], k.procs[i+1:]...)
			break
		}
	}
	k.procsMu.Unlock()
}

// advResult reports how a call to advance relinquished (or kept) the
// scheduler token.
type advResult int

const (
	// advDrained: the queue emptied (or reached the window horizon) or Stop
	// was called; the caller still holds the token and must return it to
	// the window driver if it is a process.
	advDrained advResult = iota
	// advHanded: the token was transferred to another process via its
	// resume channel; the caller no longer owns shard state.
	advHanded
	// advSelf: the calling process's own wake event fired; it keeps the
	// token and simply continues executing.
	advSelf
)

// advance runs the shard's event loop on behalf of the current
// scheduler-token holder (self, or nil for the window driver). Callback
// events execute inline; a wake or start event for another process hands the
// token over with a single channel send — the direct switch that replaces
// the classic park-then-dispatch round trip. Dispatch order is identical to
// a central loop's because every holder pops the same (time, seq)-ordered
// queue.
func (s *shard) advance(self *Proc) advResult {
	k := s.k
	for !s.stopped {
		if s.par && k.globalStop.Load() {
			s.stopped = true
			return advDrained
		}
		ev := s.popEvent()
		if ev == nil {
			return advDrained
		}
		if ev.at < s.now {
			panic("sim: event queue returned time in the past")
		}
		s.now = ev.at
		s.dispatched++
		if s.par {
			s.di = uint64(len(s.log))
			s.log = append(s.log, dispatchRec{at: ev.at, seq: ev.seq, allocs: s.seq - s.base})
		}
		if k.cancelCh != nil {
			if s.cancelLeft--; s.cancelLeft == 0 {
				s.cancelLeft = k.cancelEvery
				select {
				case <-k.cancelCh:
					k.canceled.Store(true)
					k.globalStop.Store(true)
					s.stopped = true
				default:
				}
			}
		}
		p, fn := ev.proc, ev.fn
		s.release(ev)
		if p == nil {
			fn()
			continue
		}
		if !p.started {
			p.started = true
			go p.main()
			if s.tracer != nil {
				s.tracer.ProcStart(p.pid, p.name, s.now)
			}
			s.running = p
			p.resume <- struct{}{}
			return advHanded
		}
		// Dispatching a finished or killed process would block forever, so
		// liveness is re-checked at fire time (a stale wake for a process
		// that has since completed — or that Shutdown tore down — is
		// dropped).
		if p.done || p.killed {
			continue
		}
		p.blockedVerb, p.blockedObj = "", ""
		s.running = p
		if p == self {
			return advSelf
		}
		p.resume <- struct{}{}
		return advHanded
	}
	return advDrained
}

// parkOrDie returns the scheduler token to the goroutine driving the shard
// (Run, the shard's window worker, or Shutdown). After Shutdown, nothing
// will ever receive on park again, so a completion racing the teardown
// becomes a no-op instead of a wedged goroutine.
func (s *shard) parkOrDie() {
	select {
	case s.park <- struct{}{}:
	case <-s.k.dead:
	}
}

// yield blocks the running process until some event wakes it, recording what
// it waits on for the deadlock report. The process first runs the event loop
// itself: if its own wake fires at the current instant it returns without
// any goroutine switch; otherwise it hands the scheduler token on (to the
// next process directly, or back to the window driver when the queue
// drains) and parks. It terminates (by sentinel panic, recovered in the
// spawn wrapper) when Shutdown tears the kernel down.
func (p *Proc) yield(verb, obj string) {
	p.blockedVerb, p.blockedObj = verb, obj
	s := p.sh
	switch s.advance(p) {
	case advSelf:
		return // woken at the same instant: zero channel operations
	case advDrained:
		s.parkOrDie()
	case advHanded:
		// token moved to another process; our wake will hand it back
	}
	select {
	case <-p.resume:
	case <-s.k.dead:
		panic(killSentinel{})
	}
	if p.killed {
		panic(killSentinel{})
	}
}

// wake schedules p to resume at time at.
func (s *shard) wake(p *Proc, at Time) {
	if at < s.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", at, s.now))
	}
	ev := s.alloc(at)
	ev.proc = p
	s.enqueue(ev)
}

// Sleep suspends the process for virtual duration d. Negative durations are
// treated as zero (the process still yields, preserving scheduling order).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.sh.wake(p, p.sh.now.Add(d))
	p.yield("sleep", "")
}

// SleepUntil suspends the process until virtual time t (no-op if t is in the
// past, though the process still yields).
func (p *Proc) SleepUntil(t Time) {
	if t < p.sh.now {
		t = p.sh.now
	}
	p.sh.wake(p, t)
	p.yield("sleep-until", "")
}

// DeadlockError is returned by Run when processes remain blocked but no
// events are pending, i.e. virtual time can no longer advance.
type DeadlockError struct {
	At      Time
	Blocked []string // "name(pid): reason" for each blocked process
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("sim: deadlock at %v with %d blocked process(es): %v", e.At, len(e.Blocked), e.Blocked)
}

// deadlockError builds the report. Called single-threaded after the run.
func (k *Kernel) deadlockError(at Time) *DeadlockError {
	blocked := make([]string, 0, len(k.procs))
	for _, p := range k.procs {
		blocked = append(blocked, fmt.Sprintf("%s(%d): %s", p.name, p.pid, p.blockedReason()))
	}
	sort.Strings(blocked)
	return &DeadlockError{At: at, Blocked: blocked}
}

// Run executes events until the queue drains or Stop is called. It returns a
// *DeadlockError if live processes remain blocked when the queue empties, and
// nil otherwise. Run must not be called re-entrantly, and not after Shutdown.
// On a sharded kernel Run coordinates the conservative window loop (see the
// package documentation); results are byte-identical to the unsharded run.
func (k *Kernel) Run() error {
	if k.isDead() {
		return fmt.Errorf("sim: Run on a kernel that has been shut down")
	}
	if k.nsh > 1 {
		return k.runSharded()
	}
	s := k.s0
	s.stopped = false
	if s.advance(nil) == advHanded {
		// The token is cascading from process to process; it comes back
		// here when the queue drains or Stop fires.
		<-s.park
	}
	s.running = nil
	if len(k.procs) > 0 && !s.stopped {
		return k.deadlockError(s.now)
	}
	return nil
}

// Stop halts Run after the current event completes. Processes keep their
// state; Run may not be resumed after Stop (create a fresh kernel instead).
// On a sharded kernel every shard observes the stop at its next dispatch.
func (k *Kernel) Stop() {
	if k.nsh == 1 {
		k.s0.stopped = true
		return
	}
	k.globalStop.Store(true)
}

// DefaultCancelEvery is the dispatch-count poll interval SetCancel uses when
// given a non-positive interval: frequent enough that a runaway simulation
// reacts to cancellation within microseconds of wall time, sparse enough
// that the per-event cost is a predictable branch.
const DefaultCancelEvery = 8192

// SetCancel installs a cancellation source: every `every` dispatched events
// the kernel polls ch, and if it is closed (or carries a value) the kernel
// halts exactly as if Stop had been called — the current event completes,
// processes keep their state, and Run returns. Canceled reports whether the
// poll fired. Cancellation is observed only between events, so it never
// changes any result a completed run reports: no extra events are
// scheduled, the clock is untouched, and Dispatched counts only real work.
// Combine with Shutdown to release the parked processes of an aborted run —
// the mid-run-abort contract long-lived servers rely on. On a sharded
// kernel every shard polls independently (the issue's "cancellation polls
// on every shard"), and a fired poll stops all shards at the next window
// boundary or dispatch, whichever comes first.
//
// Call before Run; every <= 0 selects DefaultCancelEvery; a nil ch disables
// polling.
func (k *Kernel) SetCancel(ch <-chan struct{}, every int) {
	k.cancelCh = ch
	if every <= 0 {
		every = DefaultCancelEvery
	}
	k.cancelEvery = uint64(every)
	for _, s := range k.shards {
		s.cancelLeft = k.cancelEvery
	}
}

// Canceled reports whether a SetCancel poll halted the kernel.
func (k *Kernel) Canceled() bool { return k.canceled.Load() }

// isDead reports whether Shutdown has completed.
func (k *Kernel) isDead() bool {
	select {
	case <-k.dead:
		return true
	default:
		return false
	}
}

// Shutdown releases every process goroutine still parked in the kernel and
// marks the kernel dead. Run leaves blocked processes parked when it returns
// a DeadlockError or is halted by Stop; without Shutdown each of those
// processes is a leaked goroutine, which matters when thousands of kernels
// are created over a program's lifetime (the experiment engine runs one per
// simulation). Shutdown wakes each live process with a terminal signal — a
// sentinel panic raised at its current yield point and recovered in the
// spawn wrapper — walking the live-process slice in spawn (= PID) order, so
// teardown, including its trace events, is reproducible. On a sharded
// kernel the walk is the same PID order; each process hands its token back
// through its own shard's park channel, so parked processes are released on
// every shard.
//
// Call Shutdown from the goroutine that called Run, after Run has returned.
// It is idempotent, safe on a kernel that ran to completion (no live
// processes), and safe on a kernel that never ran. After Shutdown the
// kernel is dead: Run returns an error and no process will ever be
// dispatched again.
func (k *Kernel) Shutdown() {
	if k.isDead() {
		return
	}
	for _, s := range k.shards {
		s.stopped = true
	}
	live := make([]*Proc, 0, len(k.procs))
	for _, p := range k.procs {
		if p.started {
			live = append(live, p)
		} else {
			// The start event never fired, so no goroutine exists; the
			// process just vanishes from the books.
			p.done = true
		}
	}
	for _, p := range live {
		p.killed = true
		p.resume <- struct{}{} // proc panics with the sentinel and unwinds
		<-p.sh.park            // its spawn wrapper confirms the exit
	}
	k.procs = nil
	close(k.dead)
}

// Pending reports the number of queued events. On a sharded kernel mid-run
// the count is aggregated from the latest window barrier; between windows
// and after Run it is exact.
func (k *Kernel) Pending() int {
	if k.nsh == 1 {
		return k.s0.queue.len() + k.s0.fifoLen
	}
	if k.phase.Load() == phaseRun {
		var n int64
		for _, s := range k.shards {
			n += s.pubPending.Load()
		}
		return int(n)
	}
	n := 0
	for _, s := range k.shards {
		n += s.queue.len() + s.fifoLen + s.outCnt
	}
	return n
}

// LiveProcs reports the number of processes that have been spawned and have
// not finished. Safe to call concurrently with a sharded run.
func (k *Kernel) LiveProcs() int {
	k.procsMu.Lock()
	n := len(k.procs)
	k.procsMu.Unlock()
	return n
}
