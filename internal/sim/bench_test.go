package sim

import (
	"testing"
	"time"
)

// BenchmarkKernelSchedule measures the event scheduling core: one timer
// event scheduled and dispatched per op, no process involvement. This is
// the benchmark the repo's BENCH_*.json kernel-sched baselines track.
func BenchmarkKernelSchedule(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	n := 0
	var tick func()
	tick = func() {
		n++
		if n < b.N {
			k.After(time.Microsecond, tick)
		}
	}
	k.After(time.Microsecond, tick)
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkKernelScheduleFanout measures a burst-heavy queue: each op pushes
// 16 timers at mixed offsets and drains them, exercising the heap rather
// than the same-time fast lane.
func BenchmarkKernelScheduleFanout(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	nop := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 16; j++ {
			k.After(Duration(j%7)*time.Microsecond, nop)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcSwitch measures the park/resume process handoff: two
// processes alternately sleeping, so every iteration is a full
// process-to-process context switch through the scheduler.
func BenchmarkProcSwitch(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	rounds := b.N/2 + 1
	for i := 0; i < 2; i++ {
		k.Spawn("p", func(p *Proc) {
			for r := 0; r < rounds; r++ {
				p.Sleep(time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkChanSendRecv measures the mailbox hot path: a producer and a
// consumer exchanging one value per iteration at the same virtual instant.
func BenchmarkChanSendRecv(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	c := NewChan[int](k, "bench")
	n := b.N
	k.Spawn("tx", func(p *Proc) {
		for i := 0; i < n; i++ {
			c.Send(i)
			p.Sleep(0)
		}
	})
	k.Spawn("rx", func(p *Proc) {
		for i := 0; i < n; i++ {
			c.Recv(p)
		}
	})
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkResourceUse measures contended resource acquisition: four
// processes time-sharing a single-capacity resource.
func BenchmarkResourceUse(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	r := NewResource(k, "cpu", 1)
	rounds := b.N/4 + 1
	for i := 0; i < 4; i++ {
		k.Spawn("u", func(p *Proc) {
			for j := 0; j < rounds; j++ {
				r.Use(p, 1, time.Microsecond)
			}
		})
	}
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}
