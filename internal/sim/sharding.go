package sim

// Conservative sharded execution: the kernel is partitioned into K shards
// that advance concurrently inside lookahead windows and exchange
// cross-shard events through per-(src,dst) mailboxes at window barriers.
// A barrier-time sequencer replay assigns every event scheduled during a
// window the exact sequence number the sequential kernel would have used,
// which makes every output — dispatch order, dispatch count, traces, all
// simulated results — byte-identical to the K=1 run. DESIGN.md §12 gives
// the algorithm and the determinism argument; this file is its
// implementation.

import "fmt"

// ShardDispatch identifies one dispatched event of a window in the exact
// global sequential order: the shard that executed it and the index into
// that shard's window dispatch log. ShardTracer implementations replay
// their per-shard records in this order.
type ShardDispatch struct {
	Shard, Index int32
}

// ShardTracer is the tracer contract for sharded kernels. A sharded run
// fires trace hooks concurrently (one goroutine per shard), so a plain
// Tracer cannot observe it; a ShardTracer instead provides one child Tracer
// per shard at run start, and at each window barrier receives the exact
// sequential interleaving of the window's dispatches so it can merge the
// children's records into the order the K=1 run would have produced.
// internal/trace.Collector implements it.
type ShardTracer interface {
	Tracer
	// ShardStart is called once, before the first window, with the owning
	// kernel and shard count. It returns one child Tracer per shard; child
	// i observes shard i's hooks under the single-goroutine-per-shard
	// contract. The children may read the kernel's per-shard dispatch
	// cursors (Kernel.ShardCursor) to tag records with the dispatch that
	// produced them.
	ShardStart(k *Kernel, nshards int) []Tracer
	// WindowEnd is called at each window barrier (single-threaded, all
	// shard workers quiescent) with the window's dispatches in exact
	// sequential order. Implementations merge and clear the children's
	// window records here.
	WindowEnd(order []ShardDispatch)
	// RunEnd is called once after the last window, before teardown-phase
	// hooks (which fire on the parent directly). Implementations fold any
	// remaining child state into the parent.
	RunEnd()
}

// NumShards reports the kernel's shard count (1 unless SetShards was used).
func (k *Kernel) NumShards() int { return k.nsh }

// Lookahead reports the cross-shard latency bound given to SetShards
// (0 on an unsharded kernel).
func (k *Kernel) Lookahead() Duration { return Duration(k.lookahead) }

// ShardOf reports the shard index owning a scheduling domain.
func (k *Kernel) ShardOf(domain int) int {
	if k.shardOf == nil {
		return 0
	}
	return int(k.shardOf[domain])
}

// ShardCursor returns a pointer to shard i's dispatch-log cursor: during a
// parallel window it holds the index (into the window's dispatch log) of
// the dispatch currently executing on that shard. Shard-i trace hooks read
// it to tag records for barrier-time reordering; nothing else should.
func (k *Kernel) ShardCursor(i int) *uint64 { return &k.shards[i].di }

// shardFor maps a scheduling domain to its shard (shard 0 when unsharded).
func (k *Kernel) shardFor(domain int) *shard {
	if k.shardOf == nil {
		return k.s0
	}
	return k.shards[k.shardOf[domain]]
}

// SetShards partitions the kernel into n shards. domainOf maps every
// scheduling domain (machine-model node) to a shard in [0,n); lookahead is
// the minimum virtual latency of any event crossing between shards — the
// conservative bound that makes windowed parallel execution sound. Callers
// derive it from machine topology (the minimum latency of any cut link);
// Proc.AfterOn enforces it per event.
//
// SetShards must be called on a fresh kernel, before anything is scheduled.
// n=1 is a no-op (the kernel keeps the classic sequential path). n>1
// requires lookahead > 0.
func (k *Kernel) SetShards(n int, domainOf []int, lookahead Duration) {
	if n < 1 {
		panic("sim: SetShards with n < 1")
	}
	if k.seqG != 0 || len(k.procs) > 0 || k.nsh != 1 || k.s0.queue.len() != 0 {
		panic("sim: SetShards after scheduling began (call it on a fresh kernel, first)")
	}
	if n == 1 {
		return
	}
	if lookahead <= 0 {
		panic("sim: SetShards with non-positive lookahead")
	}
	k.nsh = n
	k.lookahead = Time(lookahead)
	k.shardOf = make([]int32, len(domainOf))
	for d, sh := range domainOf {
		if sh < 0 || sh >= n {
			panic(fmt.Sprintf("sim: domain %d mapped to shard %d outside [0,%d)", d, sh, n))
		}
		k.shardOf[d] = int32(sh)
	}
	k.shards = make([]*shard, n)
	k.shards[0] = k.s0
	for i := 1; i < n; i++ {
		k.shards[i] = &shard{k: k, park: make(chan struct{}), horizon: maxTime}
	}
	for i, s := range k.shards {
		s.id = i
		s.cancelLeft = k.cancelEvery
		s.outbox = make([][]*event, n)
		s.tracer = k.tracer
	}
	k.windowDone = make(chan struct{}, n)
	k.trueOf = make([][]uint64, n)
	k.dispOf = make([][]int32, n)
}

// startWorkers launches one window-worker goroutine per shard. Each worker
// blocks on its windowGo channel, runs one window when signalled, and
// reports on windowDone. Workers exit when windowGo closes (stopWorkers).
func (k *Kernel) startWorkers() {
	for _, s := range k.shards {
		s.windowGo = make(chan struct{})
		go s.windowWorker()
	}
	k.workersUp = true
}

func (k *Kernel) stopWorkers() {
	if !k.workersUp {
		return
	}
	for _, s := range k.shards {
		close(s.windowGo)
	}
	k.workersUp = false
}

// windowWorker drives one shard through successive windows. The channel
// receive/send pair brackets each window, transferring shard ownership
// from the coordinator to this goroutine and back (a full happens-before
// edge in each direction, so no shard field needs atomics).
func (s *shard) windowWorker() {
	for range s.windowGo {
		if s.advance(nil) == advHanded {
			// The token cascaded into process goroutines; it returns here
			// when the shard drains to its horizon (or stops).
			<-s.park
		}
		s.running = nil
		s.k.windowDone <- struct{}{}
	}
}

// nextAt reports the timestamp of the shard's earliest queued event
// (maxTime if none). Between windows the FIFO lane is empty — every event
// due at the clock's instant was dispatched before the window's horizon cut
// in, and outbox deliveries land strictly in the future — so only the heap
// matters; the lane is checked anyway to keep the invariant explicit.
func (s *shard) nextAt() Time {
	t := maxTime
	if top := s.queue.top(); top != nil {
		t = top.at
	}
	if s.fifoHead != nil && s.fifoHead.at < t {
		t = s.fifoHead.at
	}
	return t
}

// runSharded is Run for K>1: the conservative window loop.
//
// Each iteration: snapshot every shard's next-event time; give each shard
// the horizon min(next_j : j ≠ s) + lookahead (a shard may not simulate at
// or past the earliest instant at which another shard could send it work);
// run all shards concurrently to their horizons; then, single-threaded at
// the barrier, replay the window's dispatch logs in global (time, seq)
// order to assign exact sequential sequence numbers, merge trace records,
// and deliver the outbound mailboxes in fixed (src, dst) order. The loop
// ends when every shard is drained and every mailbox empty.
func (k *Kernel) runSharded() error {
	if k.tracer != nil {
		st, ok := k.tracer.(ShardTracer)
		if !ok {
			return fmt.Errorf("sim: sharded kernel requires a ShardTracer (got %T)", k.tracer)
		}
		children := st.ShardStart(k, k.nsh)
		if len(children) != k.nsh {
			return fmt.Errorf("sim: ShardStart returned %d tracers for %d shards", len(children), k.nsh)
		}
		for i, s := range k.shards {
			s.tracer = children[i]
		}
	}
	k.phase.Store(phaseRun)
	k.startWorkers()
	err := k.windowLoop()
	k.stopWorkers()
	k.phase.Store(phasePost)
	// Teardown-phase hooks (Shutdown's ProcEnd events) fire single-threaded
	// on the parent tracer; publish final counters for concurrent readers.
	for _, s := range k.shards {
		s.publish()
		s.tracer = k.tracer
	}
	if st, ok := k.tracer.(ShardTracer); ok {
		st.RunEnd()
	}
	return err
}

func (k *Kernel) windowLoop() error {
	for {
		if k.globalStop.Load() {
			return nil
		}
		// Snapshot next-event times and find the two smallest (min2 gives
		// the horizon of the unique min holder, which no other shard
		// constrains at min1).
		min1, min2 := maxTime, maxTime
		minCount := 0
		work := false
		for _, s := range k.shards {
			s.next = s.nextAt()
			if s.next != maxTime {
				work = true
			}
			if s.next < min1 {
				min1, min2 = s.next, min1
				minCount = 1
			} else if s.next == min1 && min1 != maxTime {
				minCount++
			} else if s.next < min2 {
				min2 = s.next
			}
		}
		if !work {
			// Globally drained: deadlock iff processes remain.
			if k.LiveProcs() > 0 {
				var at Time
				for _, s := range k.shards {
					if s.now > at {
						at = s.now
					}
				}
				return k.deadlockError(at)
			}
			return nil
		}
		// Arm the window: horizons, provisional sequencing, dispatch logs.
		for _, s := range k.shards {
			other := min1
			if s.next == min1 && minCount == 1 {
				other = min2
			}
			if other == maxTime {
				s.horizon = maxTime // self-cap in AfterOn still bounds it
			} else {
				s.horizon = other + k.lookahead
			}
			s.base = k.seqG
			s.seq = k.seqG
			s.log = s.log[:0]
			s.par = true
		}
		// Run the window on all shards concurrently.
		for _, s := range k.shards {
			s.windowGo <- struct{}{}
		}
		for range k.shards {
			<-k.windowDone
		}
		stopped := k.globalStop.Load()
		for _, s := range k.shards {
			s.par = false
			s.horizon = maxTime
		}
		if stopped {
			// Stop or cancel fired mid-window: the run's outputs are
			// abandoned (same contract as sequential Stop — state is
			// frozen for Shutdown, results are not reported), so no
			// sequencer replay or mailbox delivery is needed. Drop the
			// outboxes back to the free lists to keep teardown counts
			// exact.
			for _, s := range k.shards {
				for d := range s.outbox {
					for _, ev := range s.outbox[d] {
						s.release(ev)
					}
					s.outbox[d] = s.outbox[d][:0]
				}
				s.outCnt = 0
				s.publish()
			}
			return nil
		}
		k.mergeWindow()
		// Deliver mailboxes in fixed (src, dst) order. Every cross-shard
		// event is strictly in the destination's future (its delay was >=
		// lookahead and the destination never passed its horizon), so it
		// goes to the heap, never the FIFO lane.
		for _, s := range k.shards {
			for d, box := range s.outbox {
				if len(box) == 0 {
					continue
				}
				dst := k.shards[d]
				for _, ev := range box {
					if ev.at < dst.now {
						panic("sim: cross-shard event arrived in the destination's past (lookahead violated)")
					}
					dst.queue.push(ev)
					s.outbox[d][0] = nil // help GC if boxes grow then shrink
				}
				s.outbox[d] = s.outbox[d][:0]
			}
			s.outCnt = 0
			s.publish()
		}
	}
}

// publish refreshes the barrier-published snapshots backing the concurrent
// accessors (Pending, Dispatched, Now).
func (s *shard) publish() {
	s.pubDispatched.Store(s.dispatched)
	s.pubPending.Store(int64(s.queue.len() + s.fifoLen + s.outCnt))
	s.pubNow.Store(int64(s.now))
}

// mergeWindow assigns exact sequential sequence numbers to everything the
// window scheduled, and gives the tracer the window's global dispatch
// order. Runs single-threaded at the barrier.
//
// The sequential kernel dispatches events in (time, seq) order with seq
// assigned at scheduling time from one global counter. Inside the window
// each shard assigned provisional numbers base+1, base+2, ... (all shards
// share base = the global counter at window start); the replay discovers
// the true global interleaving and renumbers.
//
// Replay invariant: an event scheduled during the window can only be
// dispatched after the dispatch that scheduled it, and at a (time, seq) no
// earlier — so replaying dispatches in (time, trueSeq) order via a heap,
// where a dispatch's record becomes available (its true seq known) when
// the allocation that produced its event is attributed, always has the
// next dispatch's key at hand. Window-window-boundary note: events
// scheduled in an earlier window already carry true (old) numbers
// (seq <= base) and seed the heap directly.
func (k *Kernel) mergeWindow() {
	// Fast path: if only one shard dispatched anything this window, its
	// provisional numbers are already the true sequential numbers (same
	// base, one allocator), so no renumbering — and the dispatch order is
	// just its log order.
	active := -1
	multi := false
	total := 0
	for _, s := range k.shards {
		if len(s.log) > 0 || s.seq != s.base {
			total += len(s.log)
			if active >= 0 {
				multi = true
			}
			active = s.id
		}
	}
	if !multi {
		if active < 0 {
			return // nothing happened (all shards were at their horizons)
		}
		s := k.shards[active]
		k.seqG = s.seq
		if st, ok := k.tracer.(ShardTracer); ok {
			k.order = k.order[:0]
			for i := range s.log {
				k.order = append(k.order, ShardDispatch{Shard: int32(active), Index: int32(i)})
			}
			st.WindowEnd(k.order)
		}
		return
	}

	// dispOf[s][j]: index into shard s's log of the dispatch that consumed
	// provisional allocation j, or -1 if that event is still queued.
	// trueOf[s][j]: the true sequence number assigned to allocation j.
	for _, s := range k.shards {
		n := int(s.seq - s.base)
		k.dispOf[s.id] = resizeI32(k.dispOf[s.id], n)
		k.trueOf[s.id] = resizeU64(k.trueOf[s.id], n)
		for j := 0; j < n; j++ {
			k.dispOf[s.id][j] = -1
		}
		for i, rec := range s.log {
			if rec.seq > s.base {
				k.dispOf[s.id][rec.seq-s.base-1] = int32(i)
			}
		}
	}
	// Seed the replay heap with every dispatch of a pre-window event; its
	// key (at, seq) is already true.
	k.replay.reset()
	for _, s := range k.shards {
		for i, rec := range s.log {
			if rec.seq <= s.base {
				k.replay.push(refEntry{at: rec.at, seq: rec.seq, shard: int32(s.id), idx: int32(i)})
			}
		}
	}
	k.order = k.order[:0]
	next := k.seqG
	popped := 0
	for k.replay.len() > 0 {
		e := k.replay.pop()
		popped++
		k.order = append(k.order, ShardDispatch{Shard: e.shard, Index: e.idx})
		s := k.shards[e.shard]
		// Attribute the allocations this dispatch performed: they received
		// the next sequence numbers, in allocation order.
		lo := s.log[e.idx].allocs
		hi := s.seq - s.base
		if int(e.idx)+1 < len(s.log) {
			hi = s.log[e.idx+1].allocs
		}
		for j := lo; j < hi; j++ {
			next++
			k.trueOf[e.shard][j] = next
			if di := k.dispOf[e.shard][j]; di >= 0 {
				k.replay.push(refEntry{at: s.log[di].at, seq: next, shard: e.shard, idx: di})
			}
		}
	}
	if popped != total {
		panic(fmt.Sprintf("sim: window replay covered %d of %d dispatches", popped, total))
	}
	k.seqG = next
	if st, ok := k.tracer.(ShardTracer); ok {
		st.WindowEnd(k.order)
	}
	// Renumber the window's surviving (still queued / outbound) events.
	// trueOf is strictly increasing in allocation order and all true
	// numbers exceed every pre-window number, so renumbering preserves the
	// relative order of any two events — the heap invariant survives
	// without re-heapifying.
	for _, s := range k.shards {
		for _, ev := range s.queue.items {
			if ev.seq > s.base {
				ev.seq = k.trueOf[s.id][ev.seq-s.base-1]
			}
		}
		for f := s.fifoHead; f != nil; f = f.next {
			if f.seq > s.base {
				f.seq = k.trueOf[s.id][f.seq-s.base-1]
			}
		}
		for d := range s.outbox {
			for _, ev := range s.outbox[d] {
				if ev.seq > s.base {
					ev.seq = k.trueOf[s.id][ev.seq-s.base-1]
				}
			}
		}
	}
}

func resizeI32(b []int32, n int) []int32 {
	if cap(b) < n {
		return make([]int32, n)
	}
	return b[:n]
}

func resizeU64(b []uint64, n int) []uint64 {
	if cap(b) < n {
		return make([]uint64, n)
	}
	return b[:n]
}

// refEntry is one pending dispatch in the window replay, keyed by its true
// (time, seq).
type refEntry struct {
	at    Time
	seq   uint64
	shard int32
	idx   int32
}

// refHeap is a plain binary min-heap of refEntry ordered by (at, seq); it
// is reused across windows.
type refHeap struct {
	items []refEntry
}

func (h *refHeap) reset()   { h.items = h.items[:0] }
func (h *refHeap) len() int { return len(h.items) }

func refLess(a, b refEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

func (h *refHeap) push(e refEntry) {
	h.items = append(h.items, e)
	i := len(h.items) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !refLess(h.items[i], h.items[p]) {
			break
		}
		h.items[i], h.items[p] = h.items[p], h.items[i]
		i = p
	}
}

func (h *refHeap) pop() refEntry {
	top := h.items[0]
	n := len(h.items) - 1
	h.items[0] = h.items[n]
	h.items = h.items[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		m := i
		if l < n && refLess(h.items[l], h.items[m]) {
			m = l
		}
		if r < n && refLess(h.items[r], h.items[m]) {
			m = r
		}
		if m == i {
			break
		}
		h.items[i], h.items[m] = h.items[m], h.items[i]
		i = m
	}
	return top
}
