package sim

import (
	"testing"
	"time"
)

// TestSetCancelHaltsRun: a closed cancel channel halts the kernel at the
// next poll like Stop — processes keep their state and Shutdown releases
// them.
func TestSetCancelHaltsRun(t *testing.T) {
	k := NewKernel()
	loops := 0
	k.Spawn("looper", func(p *Proc) {
		for i := 0; i < 1000; i++ {
			p.Sleep(time.Microsecond)
			loops++
		}
	})
	cancel := make(chan struct{})
	close(cancel)
	k.SetCancel(cancel, 10)
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !k.Canceled() {
		t.Fatal("Canceled() = false after a closed-channel run")
	}
	if loops >= 1000 {
		t.Fatal("run completed despite cancellation")
	}
	if k.LiveProcs() != 1 {
		t.Fatalf("LiveProcs = %d, want the parked looper", k.LiveProcs())
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatal("Shutdown left live processes")
	}
}

// TestSetCancelArmedUnfiredIsInvisible: an armed cancel channel that never
// fires leaves the run bit-identical — same final clock, same dispatch
// count, Canceled() false.
func TestSetCancelArmedUnfiredIsInvisible(t *testing.T) {
	run := func(arm bool) (Time, uint64) {
		k := NewKernel()
		k.Spawn("looper", func(p *Proc) {
			for i := 0; i < 500; i++ {
				p.Sleep(time.Microsecond)
			}
		})
		if arm {
			k.SetCancel(make(chan struct{}), 1)
		}
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		if k.Canceled() {
			t.Fatal("spurious cancellation")
		}
		return k.Now(), k.Dispatched()
	}
	plainT, plainD := run(false)
	armedT, armedD := run(true)
	if plainT != armedT || plainD != armedD {
		t.Fatalf("armed run diverged: %v/%d vs %v/%d", armedT, armedD, plainT, plainD)
	}
}
