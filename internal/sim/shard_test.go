package sim

import (
	"fmt"
	"math/rand"
	"testing"
	"time"
)

// pingPongWorkload builds a ring of nProc processes across nDom domains:
// each process repeatedly does local work (sleeps, same-shard channel
// traffic) and forwards a token to the next domain through AfterOn with a
// latency >= lookahead. The recorded journal (every hop with timestamp and
// dispatch count) is the byte-identity probe.
func ringWorkload(k *Kernel, nDom, hops int, lat Duration, domOf func(int) int, journal *[]string) {
	chans := make([]*Chan[int], nDom)
	for d := 0; d < nDom; d++ {
		chans[d] = NewChanOn[int](k, d, fmt.Sprintf("ring%d", d))
	}
	for d := 0; d < nDom; d++ {
		d := d
		k.SpawnOn(d, fmt.Sprintf("node%d", d), func(p *Proc) {
			for {
				tok := chans[d].Recv(p)
				*journal = append(*journal, fmt.Sprintf("%d@%d t=%d", tok, d, p.Now()))
				if tok >= hops {
					// Drain lap: keep the token moving so every node exits.
					if tok < hops+nDom-1 {
						nxt := (d + 1) % nDom
						fin := tok + 1
						p.AfterOn(nxt, lat, func() { chans[nxt].Send(fin) })
					}
					return
				}
				p.Sleep(Duration(tok%7) * 100 * time.Nanosecond) // local work
				nxt := (d + 1) % nDom
				tok++
				p.AfterOn(nxt, lat+Duration(tok%3)*time.Microsecond, func() {
					chans[nxt].Send(tok)
				})
			}
		})
	}
	k.AfterOn(0, 0, func() { chans[0].Send(0) })
}

// meshWorkload stresses multiple simultaneously-active shards: every domain
// runs a generator that fires cross-domain messages on a seeded schedule
// while also contending on a local resource. Each domain records its own
// journal (journals[d] is only touched by domain d's processes, so sharded
// runs write it single-threaded); callers compare the per-domain journals,
// which capture order, timestamps and payloads within each domain.
func meshWorkload(k *Kernel, nDom, rounds int, lat Duration, seed int64, journals [][]string) {
	rng := rand.New(rand.NewSource(seed))
	type msg struct{ from, round int }
	chans := make([]*Chan[msg], nDom)
	res := make([]*Resource, nDom)
	for d := 0; d < nDom; d++ {
		chans[d] = NewChanOn[msg](k, d, fmt.Sprintf("mesh%d", d))
		res[d] = NewResourceOn(k, d, fmt.Sprintf("cpu%d", d), 2)
	}
	// Pre-seeded schedule so sequential and sharded runs build identical
	// plans regardless of execution interleaving.
	plan := make([][]int, nDom)
	inbound := make([]int, nDom)
	for d := range plan {
		plan[d] = make([]int, rounds)
		for r := range plan[d] {
			plan[d][r] = rng.Intn(nDom)
			inbound[plan[d][r]]++
		}
	}
	for d := 0; d < nDom; d++ {
		d := d
		k.SpawnOn(d, fmt.Sprintf("gen%d", d), func(p *Proc) {
			for r := 0; r < rounds; r++ {
				res[d].Use(p, 1, Duration(200+50*(r%4))*time.Nanosecond)
				tgt := plan[d][r]
				m := msg{from: d, round: r}
				if tgt == d {
					chans[d].SendAfter(300*time.Nanosecond, m)
				} else {
					p.AfterOn(tgt, lat, func() { chans[tgt].Send(m) })
				}
				p.Sleep(time.Microsecond)
			}
		})
		k.SpawnOn(d, fmt.Sprintf("sink%d", d), func(p *Proc) {
			for i := 0; i < inbound[d]; i++ {
				v := chans[d].Recv(p)
				journals[d] = append(journals[d], fmt.Sprintf("sink%d got %d/%d t=%d", d, v.from, v.round, p.Now()))
			}
		})
	}
}

func runJournal(t *testing.T, shards int, build func(k *Kernel, journal *[]string)) ([]string, uint64, Time) {
	t.Helper()
	const nDom = 8
	k := NewKernel()
	if shards > 1 {
		domOf := make([]int, nDom)
		for d := range domOf {
			domOf[d] = d % shards
		}
		k.SetShards(shards, domOf, 3*time.Microsecond)
	}
	var journal []string
	build(k, &journal)
	if err := k.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	disp, now := k.Dispatched(), k.Now()
	k.Shutdown()
	return journal, disp, now
}

func TestShardedRingIdentical(t *testing.T) {
	build := func(k *Kernel, j *[]string) {
		ringWorkload(k, 8, 200, 3*time.Microsecond, nil, j)
	}
	seqJ, seqD, seqT := runJournal(t, 1, build)
	for _, K := range []int{2, 3, 4, 8} {
		gotJ, gotD, gotT := runJournal(t, K, build)
		if len(gotJ) != len(seqJ) {
			t.Fatalf("K=%d: journal length %d != %d", K, len(gotJ), len(seqJ))
		}
		for i := range seqJ {
			if gotJ[i] != seqJ[i] {
				t.Fatalf("K=%d: journal[%d] = %q, want %q", K, i, gotJ[i], seqJ[i])
			}
		}
		if gotD != seqD || gotT != seqT {
			t.Fatalf("K=%d: dispatched/now = %d/%d, want %d/%d", K, gotD, gotT, seqD, seqT)
		}
	}
}

func TestShardedMeshIdentical(t *testing.T) {
	const nDom = 8
	runMesh := func(shards int, seed int64) ([][]string, uint64) {
		k := NewKernel()
		if shards > 1 {
			domOf := make([]int, nDom)
			for d := range domOf {
				domOf[d] = d % shards
			}
			k.SetShards(shards, domOf, 3*time.Microsecond)
		}
		journals := make([][]string, nDom)
		meshWorkload(k, nDom, 40, 3*time.Microsecond, seed, journals)
		if err := k.Run(); err != nil {
			t.Fatalf("shards=%d seed=%d: %v", shards, seed, err)
		}
		disp := k.Dispatched()
		k.Shutdown()
		return journals, disp
	}
	for seed := int64(1); seed <= 5; seed++ {
		seqJ, seqD := runMesh(1, seed)
		for _, K := range []int{2, 4, 8} {
			gotJ, gotD := runMesh(K, seed)
			for d := 0; d < nDom; d++ {
				if fmt.Sprint(gotJ[d]) != fmt.Sprint(seqJ[d]) {
					t.Fatalf("seed=%d K=%d domain %d:\nseq: %v\ngot: %v", seed, K, d, seqJ[d], gotJ[d])
				}
			}
			if gotD != seqD {
				t.Fatalf("seed=%d K=%d: dispatched = %d, want %d", seed, K, gotD, seqD)
			}
		}
	}
}

// TestShardedAccessors checks Pending/LiveProcs/Dispatched/Now from a
// concurrent goroutine during a sharded run (race-safety is the point; run
// under -race).
func TestShardedAccessors(t *testing.T) {
	k := NewKernel()
	domOf := []int{0, 1, 2, 3, 0, 1, 2, 3}
	k.SetShards(4, domOf, 3*time.Microsecond)
	var journal []string
	ringWorkload(k, 8, 500, 3*time.Microsecond, nil, &journal)
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = k.Pending()
			_ = k.Dispatched()
			_ = k.LiveProcs()
			_ = k.Now()
		}
	}()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	close(stop)
	<-done
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after run", k.LiveProcs())
	}
	if k.Pending() != 0 {
		t.Fatalf("Pending = %d after run", k.Pending())
	}
	if k.Dispatched() == 0 {
		t.Fatal("Dispatched = 0 after run")
	}
	k.Shutdown()
}

// TestShardedShutdownParked tears down a sharded kernel with processes
// parked on every shard (the deadlock-then-Shutdown contract).
func TestShardedShutdownParked(t *testing.T) {
	k := NewKernel()
	domOf := []int{0, 1, 2, 3}
	k.SetShards(4, domOf, time.Microsecond)
	for d := 0; d < 4; d++ {
		d := d
		ch := NewChanOn[int](k, d, fmt.Sprintf("never%d", d))
		k.SpawnOn(d, fmt.Sprintf("stuck%d", d), func(p *Proc) {
			ch.Recv(p) // never delivered: parks forever
		})
	}
	err := k.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("Run = %v, want DeadlockError", err)
	}
	if len(de.Blocked) != 4 {
		t.Fatalf("blocked = %v, want 4 entries", de.Blocked)
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Shutdown", k.LiveProcs())
	}
	// Idempotent.
	k.Shutdown()
}

// TestShardedDeadlockOnlyWhenAllQuiescent: one shard drains early while
// others keep working; the run must complete without a spurious deadlock.
func TestShardedDeadlockOnlyWhenAllQuiescent(t *testing.T) {
	k := NewKernel()
	domOf := []int{0, 1}
	k.SetShards(2, domOf, time.Microsecond)
	// Domain 0 finishes immediately; domain 1 runs long and then messages
	// domain 0's channel consumer via AfterOn.
	ch := NewChanOn[int](k, 0, "late")
	k.SpawnOn(0, "waiter", func(p *Proc) {
		if v := ch.Recv(p); v != 42 {
			t.Errorf("got %d", v)
		}
	})
	k.SpawnOn(1, "worker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Microsecond)
		}
		p.AfterOn(0, time.Microsecond, func() { ch.Send(42) })
	})
	if err := k.Run(); err != nil {
		t.Fatalf("spurious deadlock: %v", err)
	}
	k.Shutdown()
}

// TestShardedCancelMidWindow: a cancel channel closed while shards are
// mid-window halts the run on every shard; Shutdown then releases all
// parked procs.
func TestShardedCancelMidWindow(t *testing.T) {
	k := NewKernel()
	domOf := []int{0, 1, 2, 3, 0, 1, 2, 3}
	cancel := make(chan struct{})
	k.SetCancel(cancel, 64)
	k.SetShards(4, domOf, 3*time.Microsecond)
	var journal []string
	ringWorkload(k, 8, 1_000_000, 3*time.Microsecond, nil, &journal)
	go func() {
		time.Sleep(5 * time.Millisecond)
		close(cancel)
	}()
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	if !k.Canceled() {
		t.Fatal("kernel did not observe cancellation")
	}
	k.Shutdown()
	if k.LiveProcs() != 0 {
		t.Fatalf("LiveProcs = %d after Shutdown", k.LiveProcs())
	}
}

// TestShardedStop: Kernel.Stop from inside a process halts all shards.
func TestShardedStop(t *testing.T) {
	k := NewKernel()
	domOf := []int{0, 1}
	k.SetShards(2, domOf, time.Microsecond)
	k.SpawnOn(0, "stopper", func(p *Proc) {
		p.Sleep(50 * time.Microsecond)
		k.Stop()
	})
	k.SpawnOn(1, "spinner", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
}

// TestSetShardsGuards: misuse panics.
func TestSetShardsGuards(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("zero lookahead", func() {
		NewKernel().SetShards(2, []int{0, 1}, 0)
	})
	mustPanic("bad domain map", func() {
		NewKernel().SetShards(2, []int{0, 5}, time.Microsecond)
	})
	mustPanic("after scheduling", func() {
		k := NewKernel()
		k.Spawn("p", func(p *Proc) {})
		k.SetShards(2, []int{0, 1}, time.Microsecond)
	})
	// Cross-shard delay below lookahead panics on the proc's goroutine;
	// catch it in the body and report through a channel.
	{
		k := NewKernel()
		k.SetShards(2, []int{0, 1}, 10*time.Microsecond)
		panicked := make(chan bool, 1)
		k.SpawnOn(0, "p", func(p *Proc) {
			defer func() { panicked <- recover() != nil }()
			p.AfterOn(1, time.Microsecond, func() {})
		})
		_ = k.Run()
		if !<-panicked {
			t.Fatal("cross-shard delay under lookahead did not panic")
		}
		k.Shutdown()
	}
	mustPanic("After on sharded kernel", func() {
		k := NewKernel()
		k.SetShards(2, []int{0, 1}, time.Microsecond)
		k.After(time.Microsecond, func() {})
	})
}

// TestShardedEchoChain: shard 0 drives an echo protocol where shard 1 has
// no self-generated events — every event it executes arrives from shard 0,
// and each echo returns to shard 0. Without the dynamic horizon self-cap
// the lone active shard (whose static horizon is unbounded because the
// other shard looks idle) would simulate past the reply's arrival.
func TestShardedEchoChain(t *testing.T) {
	lat := 2 * time.Microsecond
	build := func(k *Kernel, journal *[]string) {
		req := NewChanOn[int](k, 1, "req")
		rep := NewChanOn[int](k, 0, "rep")
		k.SpawnOn(1, "echoer", func(p *Proc) {
			for {
				v := req.Recv(p)
				if v < 0 {
					return
				}
				p.AfterOn(0, lat, func() { rep.Send(v) })
			}
		})
		k.SpawnOn(0, "driver", func(p *Proc) {
			for i := 0; i < 50; i++ {
				i := i
				p.AfterOn(1, lat, func() { req.Send(i) })
				v := rep.Recv(p)
				*journal = append(*journal, fmt.Sprintf("echo %d at %d", v, p.Now()))
			}
			p.AfterOn(1, lat, func() { req.Send(-1) })
		})
	}
	seqJ, seqD, _ := runJournal2(t, 1, build)
	gotJ, gotD, _ := runJournal2(t, 2, build)
	if fmt.Sprint(gotJ) != fmt.Sprint(seqJ) || gotD != seqD {
		t.Fatalf("K=2: journal/dispatched mismatch\nseq: %v (%d)\ngot: %v (%d)", seqJ, seqD, gotJ, gotD)
	}
}

func runJournal2(t *testing.T, shards int, build func(k *Kernel, journal *[]string)) ([]string, uint64, Time) {
	t.Helper()
	const nDom = 2
	k := NewKernel()
	if shards > 1 {
		domOf := make([]int, nDom)
		for d := range domOf {
			domOf[d] = d % shards
		}
		k.SetShards(shards, domOf, 2*time.Microsecond)
	}
	var journal []string
	build(k, &journal)
	if err := k.Run(); err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	disp, now := k.Dispatched(), k.Now()
	k.Shutdown()
	return journal, disp, now
}
