package sim

import (
	"testing"
	"time"
)

// recordingTracer captures every hook invocation so tests can pin the
// trace hook contract documented in the package comment.
type recordingTracer struct {
	starts []string // "name/pid@t"
	ends   []string
	waits  []waitRec
	chans  []string // "op object@t"
	ress   []string
}

type waitRec struct {
	kind, object string
	from, to     Time
	depth        int
}

func (r *recordingTracer) ProcStart(pid int, name string, at Time) {
	r.starts = append(r.starts, name)
}

func (r *recordingTracer) ProcEnd(pid int, name string, at Time) {
	r.ends = append(r.ends, name)
}

func (r *recordingTracer) Wait(pid int, proc, kind, object string, from, to Time, queueDepth int) {
	r.waits = append(r.waits, waitRec{kind, object, from, to, queueDepth})
}

func (r *recordingTracer) ChanOp(op, object string, pid int, at Time) {
	r.chans = append(r.chans, op+" "+object)
}

func (r *recordingTracer) ResourceOp(op, object string, pid, n, inUse int, at Time) {
	r.ress = append(r.ress, op+" "+object)
}

func (r *recordingTracer) wait(kind string) *waitRec {
	for i := range r.waits {
		if r.waits[i].kind == kind {
			return &r.waits[i]
		}
	}
	return nil
}

const msec = Duration(time.Millisecond)

// TestTracerProcLifecycle checks that every spawned proc produces exactly
// one ProcStart and one ProcEnd, in that order, including procs that are
// still parked at shutdown.
func TestTracerProcLifecycle(t *testing.T) {
	k := NewKernel()
	tr := &recordingTracer{}
	k.SetTracer(tr)
	k.Spawn("a", func(p *Proc) { p.Sleep(msec) })
	k.Spawn("b", func(p *Proc) { p.Sleep(2 * msec) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	k.Shutdown()
	if len(tr.starts) != 2 || len(tr.ends) != 2 {
		t.Fatalf("starts=%v ends=%v, want 2 of each", tr.starts, tr.ends)
	}
}

// TestTracerBlockedRecv checks the Wait hook fires for a recv that blocks,
// with the blocked interval bounded by the send time, and that it does NOT
// fire for a recv satisfied immediately.
func TestTracerBlockedRecv(t *testing.T) {
	k := NewKernel()
	tr := &recordingTracer{}
	k.SetTracer(tr)
	ch := NewChan[int](k, "pipe")
	ch.SendAfter(5*msec, 1) // received after a 5ms block
	ch.SendAfter(5*msec, 2) // already queued at second recv: no block
	k.Spawn("rx", func(p *Proc) {
		ch.Recv(p)
		ch.Recv(p)
	})
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	w := tr.wait("recv")
	if w == nil {
		t.Fatalf("no recv wait recorded: %+v", tr.waits)
	}
	if w.object != "pipe" || w.from != 0 || w.to != Time(5*msec) {
		t.Fatalf("recv wait = %+v, want pipe blocked [0, 5ms]", *w)
	}
	if n := len(tr.waits); n != 1 {
		t.Fatalf("got %d waits, want 1 (non-blocking recv must not report): %+v", n, tr.waits)
	}
}

// TestTracerResourceContention checks acquire waits carry the queue depth
// observed at block time and that ResourceOp fires for acquire/release.
func TestTracerResourceContention(t *testing.T) {
	k := NewKernel()
	tr := &recordingTracer{}
	k.SetTracer(tr)
	res := NewResource(k, "cpu", 1)
	for i := 0; i < 3; i++ {
		k.Spawn("u", func(p *Proc) {
			res.Use(p, 1, msec)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var depths []int
	for _, w := range tr.waits {
		if w.kind != "acquire" || w.object != "cpu" {
			t.Fatalf("unexpected wait %+v", w)
		}
		if w.to <= w.from {
			t.Fatalf("acquire wait has empty interval: %+v", w)
		}
		depths = append(depths, w.depth)
	}
	// First proc acquires instantly (no wait); the second blocks behind 0
	// queued waiters, the third behind 1.
	if len(depths) != 2 || depths[0] != 0 || depths[1] != 1 {
		t.Fatalf("acquire queue depths = %v, want [0 1]", depths)
	}
	var acq, rel int
	for _, s := range tr.ress {
		switch s {
		case "acquire cpu":
			acq++
		case "release cpu":
			rel++
		}
	}
	if acq != 3 || rel != 3 {
		t.Fatalf("resource ops acquire=%d release=%d, want 3/3 (%v)", acq, rel, tr.ress)
	}
}

// TestTracerBarrier checks barrier waits are reported for the procs that
// arrive early, spanning arrival to release.
func TestTracerBarrier(t *testing.T) {
	k := NewKernel()
	tr := &recordingTracer{}
	k.SetTracer(tr)
	b := NewBarrier(k, "sync", 3)
	for i := 0; i < 3; i++ {
		d := Duration(i) * msec
		k.Spawn("w", func(p *Proc) {
			p.Sleep(d)
			b.Wait(p)
		})
	}
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, w := range tr.waits {
		if w.kind != "barrier" || w.object != "sync" {
			continue
		}
		n++
		if w.to != Time(2*msec) {
			t.Fatalf("barrier wait released at %v, want 2ms: %+v", w.to, w)
		}
	}
	// The last arrival never blocks; the two early arrivals do.
	if n != 2 {
		t.Fatalf("got %d barrier waits, want 2: %+v", n, tr.waits)
	}
}

// TestTracerChanOps checks send/recv instants fire with the channel name.
func TestTracerChanOps(t *testing.T) {
	k := NewKernel()
	tr := &recordingTracer{}
	k.SetTracer(tr)
	ch := NewChan[int](k, "data")
	ch.Send(7)
	k.Spawn("rx", func(p *Proc) { ch.Recv(p) })
	if err := k.Run(); err != nil {
		t.Fatal(err)
	}
	var send, recv int
	for _, s := range tr.chans {
		switch s {
		case "send data":
			send++
		case "recv data":
			recv++
		}
	}
	if send != 1 || recv != 1 {
		t.Fatalf("chan ops = %v, want one send and one recv on data", tr.chans)
	}
}

// TestDispatchedCounts checks the kernel counts every proc dispatch, and
// that installing a tracer does not change the count (tracing must only
// observe).
func TestDispatchedCounts(t *testing.T) {
	runOnce := func(tr Tracer) uint64 {
		k := NewKernel()
		if tr != nil {
			k.SetTracer(tr)
		}
		ch := NewChan[int](k, "c")
		k.Spawn("tx", func(p *Proc) {
			for i := 0; i < 4; i++ {
				p.Sleep(msec)
				ch.Send(i)
			}
		})
		k.Spawn("rx", func(p *Proc) {
			for i := 0; i < 4; i++ {
				ch.Recv(p)
			}
		})
		if err := k.Run(); err != nil {
			t.Fatal(err)
		}
		return k.Dispatched()
	}
	plain := runOnce(nil)
	if plain == 0 {
		t.Fatal("Dispatched() == 0 after a run with two procs")
	}
	if traced := runOnce(&recordingTracer{}); traced != plain {
		t.Fatalf("tracer changed dispatch count: %d vs %d", traced, plain)
	}
}
