package atot

import (
	"fmt"
	"testing"

	"repro/internal/apps"
	"repro/internal/model"
	"repro/internal/platforms"
)

func evaluatorFor(t *testing.T, n, threads, nodes int) *Evaluator {
	t.Helper()
	app, err := apps.FFT2D(n, threads)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(app, platforms.CSPI(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEvaluatorCostsPositive(t *testing.T) {
	e := evaluatorFor(t, 64, 4, 4)
	m, _ := model.SpreadParallel(e.App, 4)
	c, err := e.Evaluate(m, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxNodeBusy <= 0 || c.Comm <= 0 || c.CriticalPath <= 0 || c.Total <= 0 {
		t.Fatalf("cost = %+v", c)
	}
	// The critical path chains pipeline stages, so it is at least the
	// busiest node's compute share (node busy additionally counts
	// messaging overheads, so allow that margin).
	if float64(c.CriticalPath) < 0.9*float64(c.MaxNodeBusy) {
		t.Fatalf("critical path %v implausibly below max node busy %v", c.CriticalPath, c.MaxNodeBusy)
	}
}

func TestEvaluateSpreadBeatsPacked(t *testing.T) {
	e := evaluatorFor(t, 128, 4, 4)
	spread, _ := model.SpreadParallel(e.App, 4)
	packed := model.NewMapping()
	for _, f := range e.App.Functions {
		packed.Set(f.Name, make([]int, f.Threads)...) // all node 0
	}
	cs, err := e.Evaluate(spread, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := e.Evaluate(packed, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if cs.Total >= cp.Total {
		t.Fatalf("spread (%v) not better than packed (%v)", cs.Total, cp.Total)
	}
	if cs.MaxNodeBusy >= cp.MaxNodeBusy {
		t.Fatalf("spread load %v not better than packed %v", cs.MaxNodeBusy, cp.MaxNodeBusy)
	}
}

func TestCommPrefersColocation(t *testing.T) {
	// A two-function chain with both threadsets on the same nodes must have
	// less comm cost than deliberately crossed assignments.
	app, err := apps.CornerTurn(64, 2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(app, platforms.CSPI(), 8)
	if err != nil {
		t.Fatal(err)
	}
	aligned := model.NewMapping()
	aligned.Set("source", 0)
	aligned.Set("ingest", 0, 1)
	aligned.Set("turn", 0, 1)
	aligned.Set("sink", 0)
	// Crossed onto the second board: every flow goes inter-board.
	crossed := model.NewMapping()
	crossed.Set("source", 0)
	crossed.Set("ingest", 0, 1)
	crossed.Set("turn", 4, 5)
	crossed.Set("sink", 6)
	ca, err := e.Evaluate(aligned, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	cc, err := e.Evaluate(crossed, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if ca.Comm >= cc.Comm {
		t.Fatalf("aligned comm %v not less than crossed %v", ca.Comm, cc.Comm)
	}
}

func TestGADeterministicAndValid(t *testing.T) {
	e := evaluatorFor(t, 64, 4, 4)
	cfg := GAConfig{Population: 24, Generations: 30, Seed: 7}
	m1, s1, err := MapGA(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m2, s2, err := MapGA(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := m1.Validate(e.App, 4); err != nil {
		t.Fatal(err)
	}
	if s1.Best.Total != s2.Best.Total {
		t.Fatalf("nondeterministic GA: %v vs %v", s1.Best.Total, s2.Best.Total)
	}
	for fn := range m1.Assign {
		if fmt.Sprint(m1.Assign[fn]) != fmt.Sprint(m2.Assign[fn]) {
			t.Fatalf("mappings differ for %s", fn)
		}
	}
	if s1.Evaluations == 0 || len(s1.BestByGen) != 30 {
		t.Fatalf("stats = %+v", s1)
	}
}

func TestGAImprovesMonotonically(t *testing.T) {
	e := evaluatorFor(t, 64, 4, 4)
	_, stats, err := MapGA(e, GAConfig{Population: 24, Generations: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(stats.BestByGen); i++ {
		if stats.BestByGen[i] > stats.BestByGen[i-1] {
			t.Fatalf("best cost regressed at generation %d: %v -> %v (elitism broken)",
				i, stats.BestByGen[i-1], stats.BestByGen[i])
		}
	}
}

func TestGABeatsOrMatchesBaselines(t *testing.T) {
	// On an imbalanced app (threads != nodes) the GA should beat
	// round-robin and at least match greedy.
	app, err := apps.STAP(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	e, err := NewEvaluator(app, platforms.CSPI(), 8)
	if err != nil {
		t.Fatal(err)
	}
	w := Weights{}
	_, stats, err := MapGA(e, GAConfig{Population: 48, Generations: 80, Seed: 1, Weights: w})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := e.Evaluate(model.RoundRobin(app, 8), w)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Best.Total > rr.Total {
		t.Fatalf("GA (%v) worse than round-robin (%v)", stats.Best.Total, rr.Total)
	}
	greedy, err := MapGreedy(e)
	if err != nil {
		t.Fatal(err)
	}
	gc, err := e.Evaluate(greedy, w)
	if err != nil {
		t.Fatal(err)
	}
	// The GA seeds include the heuristics, so it can only be <= them after
	// elitist evolution — but greedy is not a seed, so allow a small slack.
	if float64(stats.Best.Total) > 1.1*float64(gc.Total) {
		t.Fatalf("GA (%v) much worse than greedy (%v)", stats.Best.Total, gc.Total)
	}
	t.Logf("GA=%.3g greedy=%.3g roundrobin=%.3g", stats.Best.Total, gc.Total, rr.Total)
}

func TestLatencyBoundPenalty(t *testing.T) {
	e := evaluatorFor(t, 64, 4, 4)
	m, _ := model.SpreadParallel(e.App, 4)
	free, err := e.Evaluate(m, Weights{Load: 1, Comm: 1, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	bounded, err := e.Evaluate(m, Weights{Load: 1, Comm: 1, Latency: 1, LatencyBound: free.CriticalPath / 10})
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Total <= free.Total {
		t.Fatalf("violated latency bound did not add penalty: %v vs %v", bounded.Total, free.Total)
	}
}

func TestGreedyValidMapping(t *testing.T) {
	e := evaluatorFor(t, 64, 4, 8)
	m, err := MapGreedy(e)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Validate(e.App, 8); err != nil {
		t.Fatal(err)
	}
}

func TestEstimateSchedule(t *testing.T) {
	e := evaluatorFor(t, 64, 4, 4)
	m, _ := model.SpreadParallel(e.App, 4)
	sched, err := e.EstimateSchedule(m)
	if err != nil {
		t.Fatal(err)
	}
	// One entry per thread: 1 + 4 + 4 + 1.
	if len(sched) != 10 {
		t.Fatalf("schedule has %d entries, want 10", len(sched))
	}
	if sched[0].Fn != "source" || sched[0].Start != 0 {
		t.Fatalf("first task = %+v", sched[0])
	}
	byFn := map[string][2]int{}
	for i, s := range sched {
		if s.End < s.Start {
			t.Fatalf("task %+v ends before start", s)
		}
		if _, ok := byFn[s.Fn]; !ok {
			byFn[s.Fn] = [2]int{i, i}
		}
	}
	// The sink must start after the source finishes.
	var sourceEnd, sinkStart = sched[0].End, sched[len(sched)-1].Start
	if sinkStart < sourceEnd {
		t.Fatalf("sink starts (%v) before source ends (%v)", sinkStart, sourceEnd)
	}
}

func TestNodeSpeedsChangeEvaluation(t *testing.T) {
	e := evaluatorFor(t, 128, 4, 4)
	spread, _ := model.SpreadParallel(e.App, 4)
	before, err := e.Evaluate(spread, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	// Slow down node 0: the same mapping now costs more.
	e.SetNodeSpeeds([]float64{0.25, 1, 1, 1})
	after, err := e.Evaluate(spread, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if after.MaxNodeBusy <= before.MaxNodeBusy {
		t.Fatalf("slowing node 0 did not raise max busy: %v vs %v", after.MaxNodeBusy, before.MaxNodeBusy)
	}
	// The speed-aware greedy mapper should now avoid node 0 for the heavy
	// FFT threads.
	m, err := MapGreedy(e)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.Evaluate(m, Weights{})
	if err != nil {
		t.Fatal(err)
	}
	if c.MaxNodeBusy >= after.MaxNodeBusy {
		t.Fatalf("greedy (%v) did not improve on naive spread (%v) with a slow node", c.MaxNodeBusy, after.MaxNodeBusy)
	}
}

func TestEvaluatorRejectsBadApp(t *testing.T) {
	app := model.NewApp("broken")
	mt, _ := app.AddType(&model.DataType{Name: "m", Rows: 8, Cols: 8, Elem: model.ElemComplex})
	f := app.AddFunction(&model.Function{Name: "f", Kind: "fft_rows", Threads: 1})
	f.AddInput("in", mt, model.ByRows) // undriven input
	f.AddOutput("out", mt, model.ByRows)
	if _, err := NewEvaluator(app, platforms.CSPI(), 4); err == nil {
		t.Fatal("invalid app accepted")
	}
}

func TestEvaluateRejectsIncompleteMapping(t *testing.T) {
	e := evaluatorFor(t, 64, 2, 4)
	m := model.NewMapping()
	m.Set("source", 0)
	if _, err := e.Evaluate(m, Weights{}); err == nil {
		t.Fatal("incomplete mapping accepted")
	}
}

// TestFlowTimeMatchesReference pins the memoized three-category flow table
// to the arithmetic reference transferTime for every flow and node pair, so
// table-building bugs cannot silently change mapping costs.
func TestFlowTimeMatchesReference(t *testing.T) {
	e := evaluatorFor(t, 64, 4, 8)
	for fi, fl := range e.flows {
		for src := 0; src < e.NumNodes; src++ {
			for dst := 0; dst < e.NumNodes; dst++ {
				got := e.flowTime(fi, src, dst)
				want := e.transferTime(fl, src, dst)
				if got != want {
					t.Fatalf("flow %d (%d->%d): flowTime %v != transferTime %v", fi, src, dst, got, want)
				}
			}
		}
	}
}

// TestTaskNodeMatchesReference pins the per-(task, node) busy-time table to
// nodeTime, including after a speed change rebuilds it.
func TestTaskNodeMatchesReference(t *testing.T) {
	e := evaluatorFor(t, 64, 4, 4)
	check := func() {
		t.Helper()
		for i, tk := range e.tasks {
			for n := 0; n < e.NumNodes; n++ {
				got := e.taskNode[i][n]
				want := e.nodeTime(e.taskTime[tk.fn.ID][tk.thread], n)
				if got != want {
					t.Fatalf("task %d node %d: taskNode %v != nodeTime %v", i, n, got, want)
				}
			}
		}
	}
	check()
	e.SetNodeSpeeds([]float64{1, 0.5, 2, 1})
	check()
}

// TestGAParallelismInvariant verifies the batch-scored GA's core claim: the
// search trajectory is identical at any pool width, because the rng is only
// consumed while breeding, never while scoring.
func TestGAParallelismInvariant(t *testing.T) {
	base := GAConfig{Population: 24, Generations: 12, Seed: 7}
	var ref *model.Mapping
	var refStats *GAStats
	for _, par := range []int{1, 4, 0} {
		e := evaluatorFor(t, 64, 4, 4)
		cfg := base
		cfg.Parallelism = par
		m, stats, err := MapGA(e, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref, refStats = m, stats
			continue
		}
		if fmt.Sprint(m.Assign) != fmt.Sprint(ref.Assign) {
			t.Fatalf("parallelism %d changed the winning mapping:\n%v\nvs\n%v", par, m.Assign, ref.Assign)
		}
		if stats.Evaluations != refStats.Evaluations {
			t.Fatalf("parallelism %d: %d evaluations, want %d", par, stats.Evaluations, refStats.Evaluations)
		}
		if fmt.Sprint(stats.BestByGen) != fmt.Sprint(refStats.BestByGen) {
			t.Fatalf("parallelism %d changed the trajectory", par)
		}
	}
}
