package atot

import (
	"runtime"
	"sync"
)

// runPool executes n independent jobs on a bounded worker pool. It is the
// experiment engine's pooling pattern, duplicated here because atot cannot
// import internal/experiments (that package imports atot).
//
// Each job writes only its own output slot, so pooled execution produces
// byte-identical results to sequential execution: parallelism changes
// wall-clock time, never a computed number. parallelism <= 0 selects
// runtime.GOMAXPROCS(0) workers; 1 runs the jobs inline on the calling
// goroutine (the sequential reference).
func runPool(n, parallelism int, job func(i int)) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			job(i)
		}
		return
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
}
