package atot

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// GAConfig tunes the genetic search. Zero values select defaults.
type GAConfig struct {
	Population  int     // default 64
	Generations int     // default 150
	Crossover   float64 // default 0.85
	Mutation    float64 // per-gene, default 0.04
	Elite       int     // default 2
	Tournament  int     // default 3
	Seed        int64   // default 1
	// Parallelism bounds the worker pool that batch-scores each generation's
	// offspring (0 = GOMAXPROCS, 1 = sequential). Any setting yields the
	// identical search trajectory: random numbers are consumed only while
	// breeding genomes, never while scoring them, so the rng stream — and
	// therefore every generation's population — is unchanged by pooling.
	Parallelism int
	Weights     Weights
}

func (c GAConfig) withDefaults() GAConfig {
	if c.Population <= 0 {
		c.Population = 64
	}
	if c.Generations <= 0 {
		c.Generations = 150
	}
	if c.Crossover <= 0 {
		c.Crossover = 0.85
	}
	if c.Mutation <= 0 {
		c.Mutation = 0.04
	}
	if c.Elite <= 0 {
		c.Elite = 2
	}
	if c.Tournament <= 0 {
		c.Tournament = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Weights = c.Weights.withDefaults()
	return c
}

// GAStats reports the search trajectory.
type GAStats struct {
	Generations int
	// BestByGen[g] is the best objective value after generation g.
	BestByGen []float64
	// Evaluations is the number of cost evaluations performed.
	Evaluations int
	// Best is the winning mapping's cost breakdown.
	Best Cost
}

// MapGA runs the genetic algorithm and returns the best mapping found
// together with search statistics. The search is deterministic for a given
// seed.
func MapGA(e *Evaluator, cfg GAConfig) (*model.Mapping, *GAStats, error) {
	c := cfg.withDefaults()
	if len(e.tasks) == 0 {
		return nil, nil, fmt.Errorf("atot: application has no tasks")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	genomeLen := len(e.tasks)

	newGenome := func() genome {
		g := make(genome, genomeLen)
		for i := range g {
			g[i] = rng.Intn(e.NumNodes)
		}
		return g
	}

	type scored struct {
		g    genome
		cost Cost
	}
	stats := &GAStats{Generations: c.Generations}
	// scoreAll prices a batch of genomes on the worker pool. evalGenome is
	// pure (pooled scratch, memoized tables, no rng), so scoring in parallel
	// is safe and preserves the exact sequential trajectory.
	scoreAll := func(batch []scored) {
		stats.Evaluations += len(batch)
		runPool(len(batch), c.Parallelism, func(i int) {
			batch[i].cost = e.evalGenome(batch[i].g, c.Weights)
		})
	}

	pop := make([]scored, c.Population)
	// Seed the population with the two deterministic baselines plus random
	// genomes, so the GA never does worse than the heuristics.
	if g, err := e.genomeFromMapping(model.RoundRobin(e.App, e.NumNodes)); err == nil {
		pop[0] = scored{g: g}
	} else {
		pop[0] = scored{g: newGenome()}
	}
	if m, err := model.SpreadParallel(e.App, e.NumNodes); err == nil {
		if g, err := e.genomeFromMapping(m); err == nil {
			pop[1] = scored{g: g}
		}
	}
	if pop[1].g == nil {
		pop[1] = scored{g: newGenome()}
	}
	for i := 2; i < c.Population; i++ {
		pop[i] = scored{g: newGenome()}
	}
	scoreAll(pop)

	best := func() scored {
		b := pop[0]
		for _, s := range pop[1:] {
			if s.cost.Total < b.cost.Total {
				b = s
			}
		}
		return b
	}
	tournament := func() genome {
		b := pop[rng.Intn(len(pop))]
		for i := 1; i < c.Tournament; i++ {
			s := pop[rng.Intn(len(pop))]
			if s.cost.Total < b.cost.Total {
				b = s
			}
		}
		return b.g
	}

	for gen := 0; gen < c.Generations; gen++ {
		next := make([]scored, 0, c.Population)
		// Elitism: carry the best genomes unchanged.
		elitePool := append([]scored(nil), pop...)
		for i := 0; i < c.Elite && i < len(elitePool); i++ {
			bi := i
			for j := i + 1; j < len(elitePool); j++ {
				if elitePool[j].cost.Total < elitePool[bi].cost.Total {
					bi = j
				}
			}
			elitePool[i], elitePool[bi] = elitePool[bi], elitePool[i]
			next = append(next, elitePool[i])
		}
		// Breed all offspring first (rng-consuming, sequential), then score
		// the batch on the pool. Tournament selection reads only the previous
		// generation's costs, so deferring the children's scores changes
		// nothing.
		elites := len(next)
		for len(next) < c.Population {
			a := tournament()
			b := tournament()
			child := make(genome, genomeLen)
			if rng.Float64() < c.Crossover {
				// Single-point crossover preserves contiguous function
				// thread groups reasonably well.
				cut := rng.Intn(genomeLen)
				copy(child, a[:cut])
				copy(child[cut:], b[cut:])
			} else {
				copy(child, a)
			}
			for i := range child {
				if rng.Float64() < c.Mutation {
					child[i] = rng.Intn(e.NumNodes)
				}
			}
			next = append(next, scored{g: child})
		}
		scoreAll(next[elites:])
		pop = next
		stats.BestByGen = append(stats.BestByGen, best().cost.Total)
	}

	winner := best()
	stats.Best = winner.cost
	return e.mappingFromGenome(winner.g), stats, nil
}

// MapGreedy is the deterministic list-scheduling baseline: tasks are placed
// in topological order onto the node minimising (load + inbound transfer
// cost), a classic HEFT-style heuristic.
func MapGreedy(e *Evaluator) (*model.Mapping, error) {
	g := make(genome, len(e.tasks))
	for i := range g {
		g[i] = -1
	}
	nodeBusy := make([]sim.Duration, e.NumNodes)
	for _, f := range e.order {
		slot := e.fnSlot[f.ID]
		base := e.taskBase[slot]
		for th := 0; th < f.Threads; th++ {
			ti := base + th
			bestNode, bestCost := 0, sim.Duration(1<<62)
			for n := 0; n < e.NumNodes; n++ {
				cost := nodeBusy[n] + e.taskNode[ti][n]
				for _, fi := range e.incoming[slot] {
					if e.flows[fi].dstThread != th {
						continue
					}
					src := g[e.flowSrc[fi]]
					if src >= 0 {
						cost += e.flowTime(fi, src, n)
					}
				}
				if cost < bestCost {
					bestNode, bestCost = n, cost
				}
			}
			g[ti] = bestNode
			nodeBusy[bestNode] += e.taskNode[ti][bestNode]
		}
	}
	return e.mappingFromGenome(g), nil
}
