package atot

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// GAConfig tunes the genetic search. Zero values select defaults.
type GAConfig struct {
	Population  int     // default 64
	Generations int     // default 150
	Crossover   float64 // default 0.85
	Mutation    float64 // per-gene, default 0.04
	Elite       int     // default 2
	Tournament  int     // default 3
	Seed        int64   // default 1
	Weights     Weights
}

func (c GAConfig) withDefaults() GAConfig {
	if c.Population <= 0 {
		c.Population = 64
	}
	if c.Generations <= 0 {
		c.Generations = 150
	}
	if c.Crossover <= 0 {
		c.Crossover = 0.85
	}
	if c.Mutation <= 0 {
		c.Mutation = 0.04
	}
	if c.Elite <= 0 {
		c.Elite = 2
	}
	if c.Tournament <= 0 {
		c.Tournament = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Weights = c.Weights.withDefaults()
	return c
}

// GAStats reports the search trajectory.
type GAStats struct {
	Generations int
	// BestByGen[g] is the best objective value after generation g.
	BestByGen []float64
	// Evaluations is the number of cost evaluations performed.
	Evaluations int
	// Best is the winning mapping's cost breakdown.
	Best Cost
}

// MapGA runs the genetic algorithm and returns the best mapping found
// together with search statistics. The search is deterministic for a given
// seed.
func MapGA(e *Evaluator, cfg GAConfig) (*model.Mapping, *GAStats, error) {
	c := cfg.withDefaults()
	if len(e.tasks) == 0 {
		return nil, nil, fmt.Errorf("atot: application has no tasks")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	genomeLen := len(e.tasks)

	newGenome := func() genome {
		g := make(genome, genomeLen)
		for i := range g {
			g[i] = rng.Intn(e.NumNodes)
		}
		return g
	}

	type scored struct {
		g    genome
		cost Cost
	}
	stats := &GAStats{Generations: c.Generations}
	score := func(g genome) Cost {
		stats.Evaluations++
		return e.evalGenome(g, c.Weights)
	}

	pop := make([]scored, c.Population)
	// Seed the population with the two deterministic baselines plus random
	// genomes, so the GA never does worse than the heuristics.
	if g, err := e.genomeFromMapping(model.RoundRobin(e.App, e.NumNodes)); err == nil {
		pop[0] = scored{g: g, cost: score(g)}
	} else {
		g := newGenome()
		pop[0] = scored{g: g, cost: score(g)}
	}
	if m, err := model.SpreadParallel(e.App, e.NumNodes); err == nil {
		if g, err := e.genomeFromMapping(m); err == nil {
			pop[1] = scored{g: g, cost: score(g)}
		}
	}
	if pop[1].g == nil {
		g := newGenome()
		pop[1] = scored{g: g, cost: score(g)}
	}
	for i := 2; i < c.Population; i++ {
		g := newGenome()
		pop[i] = scored{g: g, cost: score(g)}
	}

	best := func() scored {
		b := pop[0]
		for _, s := range pop[1:] {
			if s.cost.Total < b.cost.Total {
				b = s
			}
		}
		return b
	}
	tournament := func() genome {
		b := pop[rng.Intn(len(pop))]
		for i := 1; i < c.Tournament; i++ {
			s := pop[rng.Intn(len(pop))]
			if s.cost.Total < b.cost.Total {
				b = s
			}
		}
		return b.g
	}

	for gen := 0; gen < c.Generations; gen++ {
		next := make([]scored, 0, c.Population)
		// Elitism: carry the best genomes unchanged.
		elitePool := append([]scored(nil), pop...)
		for i := 0; i < c.Elite && i < len(elitePool); i++ {
			bi := i
			for j := i + 1; j < len(elitePool); j++ {
				if elitePool[j].cost.Total < elitePool[bi].cost.Total {
					bi = j
				}
			}
			elitePool[i], elitePool[bi] = elitePool[bi], elitePool[i]
			next = append(next, elitePool[i])
		}
		for len(next) < c.Population {
			a := tournament()
			b := tournament()
			child := make(genome, genomeLen)
			if rng.Float64() < c.Crossover {
				// Single-point crossover preserves contiguous function
				// thread groups reasonably well.
				cut := rng.Intn(genomeLen)
				copy(child, a[:cut])
				copy(child[cut:], b[cut:])
			} else {
				copy(child, a)
			}
			for i := range child {
				if rng.Float64() < c.Mutation {
					child[i] = rng.Intn(e.NumNodes)
				}
			}
			next = append(next, scored{g: child, cost: score(child)})
		}
		pop = next
		stats.BestByGen = append(stats.BestByGen, best().cost.Total)
	}

	winner := best()
	stats.Best = winner.cost
	return e.mappingFromGenome(winner.g), stats, nil
}

// MapGreedy is the deterministic list-scheduling baseline: tasks are placed
// in topological order onto the node minimising (load + inbound transfer
// cost), a classic HEFT-style heuristic.
func MapGreedy(e *Evaluator) (*model.Mapping, error) {
	idx := e.nodeIndex()
	g := make(genome, len(e.tasks))
	for i := range g {
		g[i] = -1
	}
	nodeBusy := make([]sim.Duration, e.NumNodes)
	incoming := map[int][]flow{}
	for _, fl := range e.flows {
		incoming[fl.dstFn] = append(incoming[fl.dstFn], fl)
	}
	for _, f := range e.order {
		for th := 0; th < f.Threads; th++ {
			ti := idx[[2]int{f.ID, th}]
			bestNode, bestCost := 0, sim.Duration(1<<62)
			for n := 0; n < e.NumNodes; n++ {
				cost := nodeBusy[n] + e.nodeTime(e.taskTime[f.ID][th], n)
				for _, fl := range incoming[f.ID] {
					if fl.dstThread != th {
						continue
					}
					src := g[idx[[2]int{fl.srcFn, fl.srcThread}]]
					if src >= 0 {
						cost += e.transferTime(fl, src, n)
					}
				}
				if cost < bestCost {
					bestNode, bestCost = n, cost
				}
			}
			g[ti] = bestNode
			nodeBusy[bestNode] += e.nodeTime(e.taskTime[f.ID][th], bestNode)
		}
	}
	return e.mappingFromGenome(g), nil
}
