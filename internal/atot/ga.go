package atot

import (
	"fmt"
	"math/rand"

	"repro/internal/model"
	"repro/internal/sim"
)

// GAConfig tunes the genetic search. Zero values select defaults.
type GAConfig struct {
	Population  int     // default 64
	Generations int     // default 150
	Crossover   float64 // default 0.85
	Mutation    float64 // per-gene, default 0.04
	Elite       int     // default 2
	Tournament  int     // default 3
	Seed        int64   // default 1
	// Parallelism bounds the worker pool that batch-scores each generation's
	// offspring (0 = GOMAXPROCS, 1 = sequential). Any setting yields the
	// identical search trajectory: random numbers are consumed only while
	// breeding genomes, never while scoring them, so the rng stream — and
	// therefore every generation's population — is unchanged by pooling.
	Parallelism int
	Weights     Weights
	// Fitness, when non-nil, replaces the memoized DES-calibrated cost model
	// as the scoring function: each genome (a thread->node assignment in
	// function-table order, threads ascending — see AssignFromMapping) is
	// priced by Fitness alone. Fitness must be pure and safe for concurrent
	// calls; the search trajectory stays deterministic at any Parallelism.
	Fitness func(assign []int) float64
}

func (c GAConfig) withDefaults() GAConfig {
	if c.Population <= 0 {
		c.Population = 64
	}
	if c.Generations <= 0 {
		c.Generations = 150
	}
	if c.Crossover <= 0 {
		c.Crossover = 0.85
	}
	if c.Mutation <= 0 {
		c.Mutation = 0.04
	}
	if c.Elite <= 0 {
		c.Elite = 2
	}
	if c.Tournament <= 0 {
		c.Tournament = 3
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	c.Weights = c.Weights.withDefaults()
	return c
}

// GAStats reports the search trajectory.
type GAStats struct {
	Generations int
	// BestByGen[g] is the best objective value after generation g.
	BestByGen []float64
	// Evaluations is the number of cost evaluations performed.
	Evaluations int
	// Best is the winning mapping's cost breakdown.
	Best Cost
}

// MapGA runs the genetic algorithm and returns the best mapping found
// together with search statistics. The search is deterministic for a given
// seed.
func MapGA(e *Evaluator, cfg GAConfig) (*model.Mapping, *GAStats, error) {
	winner, stats, err := runGA(e, cfg, nil)
	if err != nil {
		return nil, nil, err
	}
	return e.mappingFromGenome(winner.g), stats, nil
}

// MapGAK runs the same search as MapGA and additionally returns the k best
// distinct assignments ever scored, ordered best-first (ties by discovery
// order). The archive is updated after each batch is scored, in batch index
// order, so its contents are byte-identical at any Parallelism. The winning
// mapping is always candidates[0].
func MapGAK(e *Evaluator, cfg GAConfig, k int) ([][]int, *GAStats, error) {
	if k < 1 {
		k = 1
	}
	arch := &gaArchive{k: k, seen: make(map[string]struct{})}
	_, stats, err := runGA(e, cfg, arch)
	if err != nil {
		return nil, nil, err
	}
	out := make([][]int, len(arch.top))
	for i, s := range arch.top {
		out[i] = append([]int(nil), s.g...)
	}
	return out, stats, nil
}

type scored struct {
	g    genome
	cost Cost
}

// gaArchive keeps the k best distinct genomes observed during a search.
type gaArchive struct {
	k    int
	top  []scored
	seen map[string]struct{}
}

func (a *gaArchive) offer(s scored) {
	key := genomeKey(s.g)
	if _, dup := a.seen[key]; dup {
		return
	}
	if len(a.top) == a.k && s.cost.Total >= a.top[a.k-1].cost.Total {
		return
	}
	a.seen[key] = struct{}{}
	// Insert keeping the slice sorted by cost; existing entries win ties so
	// the archive order reflects discovery order.
	i := len(a.top)
	for i > 0 && a.top[i-1].cost.Total > s.cost.Total {
		i--
	}
	a.top = append(a.top, scored{})
	copy(a.top[i+1:], a.top[i:])
	a.top[i] = scored{g: append(genome(nil), s.g...), cost: s.cost}
	if len(a.top) > a.k {
		evicted := a.top[a.k]
		a.top = a.top[:a.k]
		delete(a.seen, genomeKey(evicted.g))
	}
}

// promote moves (or inserts) s to the head of the archive so that the
// search's winner is always candidate 0, even when equal-cost genomes were
// discovered earlier.
func (a *gaArchive) promote(s scored) {
	key := genomeKey(s.g)
	at := -1
	for i, t := range a.top {
		if genomeKey(t.g) == key {
			at = i
			break
		}
	}
	if at == -1 {
		if len(a.top) == a.k {
			evicted := a.top[a.k-1]
			a.top = a.top[:a.k-1]
			delete(a.seen, genomeKey(evicted.g))
		}
		a.top = append(a.top, scored{})
		at = len(a.top) - 1
		a.seen[key] = struct{}{}
		a.top[at] = scored{g: append(genome(nil), s.g...), cost: s.cost}
	}
	head := a.top[at]
	copy(a.top[1:at+1], a.top[:at])
	a.top[0] = head
}

func genomeKey(g genome) string {
	b := make([]byte, 0, len(g)*2)
	for _, n := range g {
		b = append(b, byte(n), byte(n>>8))
	}
	return string(b)
}

func runGA(e *Evaluator, cfg GAConfig, arch *gaArchive) (scored, *GAStats, error) {
	c := cfg.withDefaults()
	if len(e.tasks) == 0 {
		return scored{}, nil, fmt.Errorf("atot: application has no tasks")
	}
	rng := rand.New(rand.NewSource(c.Seed))
	genomeLen := len(e.tasks)

	newGenome := func() genome {
		g := make(genome, genomeLen)
		for i := range g {
			g[i] = rng.Intn(e.NumNodes)
		}
		return g
	}

	stats := &GAStats{Generations: c.Generations}
	// scoreAll prices a batch of genomes on the worker pool. evalGenome is
	// pure (pooled scratch, memoized tables, no rng) and Fitness is required
	// to be, so scoring in parallel is safe and preserves the exact
	// sequential trajectory. The archive is fed afterwards, sequentially.
	scoreAll := func(batch []scored) {
		stats.Evaluations += len(batch)
		runPool(len(batch), c.Parallelism, func(i int) {
			if c.Fitness != nil {
				batch[i].cost = Cost{Total: c.Fitness(batch[i].g)}
			} else {
				batch[i].cost = e.evalGenome(batch[i].g, c.Weights)
			}
		})
		if arch != nil {
			for _, s := range batch {
				arch.offer(s)
			}
		}
	}

	pop := make([]scored, c.Population)
	// Seed the population with the two deterministic baselines plus random
	// genomes, so the GA never does worse than the heuristics.
	if g, err := e.genomeFromMapping(model.RoundRobin(e.App, e.NumNodes)); err == nil {
		pop[0] = scored{g: g}
	} else {
		pop[0] = scored{g: newGenome()}
	}
	if m, err := model.SpreadParallel(e.App, e.NumNodes); err == nil {
		if g, err := e.genomeFromMapping(m); err == nil {
			pop[1] = scored{g: g}
		}
	}
	if pop[1].g == nil {
		pop[1] = scored{g: newGenome()}
	}
	for i := 2; i < c.Population; i++ {
		pop[i] = scored{g: newGenome()}
	}
	scoreAll(pop)

	best := func() scored {
		b := pop[0]
		for _, s := range pop[1:] {
			if s.cost.Total < b.cost.Total {
				b = s
			}
		}
		return b
	}
	tournament := func() genome {
		b := pop[rng.Intn(len(pop))]
		for i := 1; i < c.Tournament; i++ {
			s := pop[rng.Intn(len(pop))]
			if s.cost.Total < b.cost.Total {
				b = s
			}
		}
		return b.g
	}

	for gen := 0; gen < c.Generations; gen++ {
		next := make([]scored, 0, c.Population)
		// Elitism: carry the best genomes unchanged.
		elitePool := append([]scored(nil), pop...)
		for i := 0; i < c.Elite && i < len(elitePool); i++ {
			bi := i
			for j := i + 1; j < len(elitePool); j++ {
				if elitePool[j].cost.Total < elitePool[bi].cost.Total {
					bi = j
				}
			}
			elitePool[i], elitePool[bi] = elitePool[bi], elitePool[i]
			next = append(next, elitePool[i])
		}
		// Breed all offspring first (rng-consuming, sequential), then score
		// the batch on the pool. Tournament selection reads only the previous
		// generation's costs, so deferring the children's scores changes
		// nothing.
		elites := len(next)
		for len(next) < c.Population {
			a := tournament()
			b := tournament()
			child := make(genome, genomeLen)
			if rng.Float64() < c.Crossover {
				// Single-point crossover preserves contiguous function
				// thread groups reasonably well.
				cut := rng.Intn(genomeLen)
				copy(child, a[:cut])
				copy(child[cut:], b[cut:])
			} else {
				copy(child, a)
			}
			for i := range child {
				if rng.Float64() < c.Mutation {
					child[i] = rng.Intn(e.NumNodes)
				}
			}
			next = append(next, scored{g: child})
		}
		scoreAll(next[elites:])
		pop = next
		stats.BestByGen = append(stats.BestByGen, best().cost.Total)
	}

	winner := best()
	stats.Best = winner.cost
	if arch != nil {
		// The elitism-preserved winner heads the archive even if an equal-cost
		// genome was discovered first.
		arch.promote(winner)
	}
	return winner, stats, nil
}

// MapGreedy is the deterministic list-scheduling baseline: tasks are placed
// in topological order onto the node minimising (load + inbound transfer
// cost), a classic HEFT-style heuristic.
func MapGreedy(e *Evaluator) (*model.Mapping, error) {
	g := make(genome, len(e.tasks))
	for i := range g {
		g[i] = -1
	}
	nodeBusy := make([]sim.Duration, e.NumNodes)
	for _, f := range e.order {
		slot := e.fnSlot[f.ID]
		base := e.taskBase[slot]
		for th := 0; th < f.Threads; th++ {
			ti := base + th
			bestNode, bestCost := 0, sim.Duration(1<<62)
			for n := 0; n < e.NumNodes; n++ {
				cost := nodeBusy[n] + e.taskNode[ti][n]
				for _, fi := range e.incoming[slot] {
					if e.flows[fi].dstThread != th {
						continue
					}
					src := g[e.flowSrc[fi]]
					if src >= 0 {
						cost += e.flowTime(fi, src, n)
					}
				}
				if cost < bestCost {
					bestNode, bestCost = n, cost
				}
			}
			g[ti] = bestNode
			nodeBusy[bestNode] += e.taskNode[ti][bestNode]
		}
	}
	return e.mappingFromGenome(g), nil
}
