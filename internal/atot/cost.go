// Package atot reproduces the SAGE Architecture Trades and Optimization
// Tool's mapping capability (§1.1): "the genetic algorithm based
// partitioning and mapping capability of AToT assigns the application tasks
// to the multi-processor, heterogeneous architecture. AToT can be employed
// for total design optimization, which includes load balancing of CPU
// resources, optimizing over latency constraints, communication minimization
// and scheduling of CPUs and busses."
//
// The package provides an analytic cost model over (application, mapping,
// platform) triples — per-node load, communication volume priced by the
// fabric, and a critical-path latency estimate via list scheduling — plus a
// seeded, deterministic genetic algorithm that searches thread-to-node
// assignments against that model, and greedy/round-robin baselines for
// comparison.
package atot

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/funclib"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
)

// task identifies one thread of one function.
type task struct {
	fn     *model.Function
	thread int
}

// flow is one precomputed data movement between threads (mapping
// independent: derived purely from port striping).
type flow struct {
	srcFn, srcThread int // function IDs and thread indices
	dstFn, dstThread int
	bytes            int
}

// Evaluator prices mappings of one application on one platform. Build it
// once; Evaluate is called per GA candidate.
type Evaluator struct {
	App      *model.App
	Platform machine.Platform
	NumNodes int

	tasks []task
	// taskTime[fnID][thread] is the per-iteration busy time of a thread on
	// a baseline-speed node.
	taskTime map[int][]sim.Duration
	flows    []flow
	order    []*model.Function
	// speeds are per-node CPU multipliers (heterogeneous targets); nil
	// means homogeneous.
	speeds []float64

	// Memoized hot-path tables, built once (GA fitness calls evalGenome tens
	// of thousands of times; nothing below may allocate or hash per call):
	taskIdx  map[[2]int]int     // (fnID, thread) -> dense task index
	fnSlot   map[int]int        // fnID -> dense function index
	taskBase []int              // [fnSlot] first task index of the function
	taskNode [][]sim.Duration   // [task][node] speed-scaled busy time
	flowSrc  []int              // [flow] source task index
	flowDst  []int              // [flow] destination task index
	flowCost [][3]sim.Duration  // [flow] {same-node copy, intra-board, inter-board}
	incoming [][]int            // [fnSlot] indices of flows into the function
	board    []int              // [node] board id
	scratch  sync.Pool          // *evalScratch, shared by parallel fitness workers
}

// evalScratch holds one fitness evaluation's working arrays; pooled so
// concurrent GA workers neither allocate per genome nor share state.
type evalScratch struct {
	nodeBusy []sim.Duration
	nodeFree []sim.Duration
	ready    [][]sim.Duration // [fnSlot][thread]
	done     [][]sim.Duration
}

// SetNodeSpeeds installs per-node CPU speed multipliers matching the ones
// the simulated machine will run with (sagert.Options.NodeSpeeds), so the
// mapper optimises for the actual heterogeneous hardware.
func (e *Evaluator) SetNodeSpeeds(speeds []float64) {
	e.speeds = speeds
	e.buildTaskNode()
}

// nodeTime scales a baseline task time by the target node's speed.
func (e *Evaluator) nodeTime(d sim.Duration, node int) sim.Duration {
	if node < len(e.speeds) && e.speeds[node] > 0 {
		return sim.Duration(float64(d) / e.speeds[node])
	}
	return d
}

// NewEvaluator prepares the mapping-independent parts of the cost model.
func NewEvaluator(app *model.App, pl machine.Platform, numNodes int) (*Evaluator, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := funclib.ValidateApp(app); err != nil {
		return nil, err
	}
	order, err := app.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		App: app, Platform: pl, NumNodes: numNodes,
		taskTime: map[int][]sim.Duration{},
		order:    order,
	}
	for _, f := range app.Functions {
		times := make([]sim.Duration, f.Threads)
		for th := 0; th < f.Threads; th++ {
			d, err := e.threadTime(f, th)
			if err != nil {
				return nil, err
			}
			times[th] = d
			e.tasks = append(e.tasks, task{fn: f, thread: th})
		}
		e.taskTime[f.ID] = times
	}
	if err := e.buildFlows(); err != nil {
		return nil, err
	}
	e.buildTables()
	return e, nil
}

// buildTables precomputes every mapping-independent lookup the hot
// evaluation path needs, replacing per-call map construction and pricing
// arithmetic with indexed loads.
func (e *Evaluator) buildTables() {
	e.taskIdx = make(map[[2]int]int, len(e.tasks))
	for i, t := range e.tasks {
		e.taskIdx[[2]int{t.fn.ID, t.thread}] = i
	}
	e.fnSlot = make(map[int]int, len(e.App.Functions))
	e.taskBase = make([]int, len(e.App.Functions))
	base := 0
	for si, f := range e.App.Functions {
		e.fnSlot[f.ID] = si
		e.taskBase[si] = base
		base += f.Threads
	}
	e.board = make([]int, e.NumNodes)
	for n := 0; n < e.NumNodes; n++ {
		e.board[n] = e.Platform.Board(n)
	}
	e.flowSrc = make([]int, len(e.flows))
	e.flowDst = make([]int, len(e.flows))
	e.flowCost = make([][3]sim.Duration, len(e.flows))
	e.incoming = make([][]int, len(e.App.Functions))
	pl := &e.Platform
	for fi, fl := range e.flows {
		e.flowSrc[fi] = e.taskIdx[[2]int{fl.srcFn, fl.srcThread}]
		e.flowDst[fi] = e.taskIdx[[2]int{fl.dstFn, fl.dstThread}]
		intraSer := sim.Duration(float64(fl.bytes) / pl.IntraBW * 1e9)
		interSer := sim.Duration(float64(fl.bytes) / pl.InterBW * 1e9)
		e.flowCost[fi] = [3]sim.Duration{
			pl.CopyTime(fl.bytes),
			pl.SendOverhead + pl.RecvOverhead + pl.IntraLatency + intraSer,
			pl.SendOverhead + pl.RecvOverhead + pl.InterLatency + interSer,
		}
		slot := e.fnSlot[fl.dstFn]
		e.incoming[slot] = append(e.incoming[slot], fi)
	}
	e.buildTaskNode()
	e.scratch.New = func() any { return e.newScratch() }
}

// buildTaskNode (re)computes the per-(task, node) busy-time table; rerun
// when the node speeds change.
func (e *Evaluator) buildTaskNode() {
	if e.taskIdx == nil {
		return // NewEvaluator still assembling; buildTables will call back
	}
	e.taskNode = make([][]sim.Duration, len(e.tasks))
	for i, t := range e.tasks {
		row := make([]sim.Duration, e.NumNodes)
		base := e.taskTime[t.fn.ID][t.thread]
		for n := 0; n < e.NumNodes; n++ {
			row[n] = e.nodeTime(base, n)
		}
		e.taskNode[i] = row
	}
}

func (e *Evaluator) newScratch() *evalScratch {
	s := &evalScratch{
		nodeBusy: make([]sim.Duration, e.NumNodes),
		nodeFree: make([]sim.Duration, e.NumNodes),
		ready:    make([][]sim.Duration, len(e.App.Functions)),
		done:     make([][]sim.Duration, len(e.App.Functions)),
	}
	for si, f := range e.App.Functions {
		s.ready[si] = make([]sim.Duration, f.Threads)
		s.done[si] = make([]sim.Duration, f.Threads)
	}
	return s
}

// flowTime prices flow fi between two nodes from the precomputed
// three-category table (same node / same board / cross-board).
func (e *Evaluator) flowTime(fi, srcNode, dstNode int) sim.Duration {
	switch {
	case srcNode == dstNode:
		return e.flowCost[fi][0]
	case e.board[srcNode] == e.board[dstNode]:
		return e.flowCost[fi][1]
	default:
		return e.flowCost[fi][2]
	}
}

// threadTime estimates one thread's per-iteration compute time from the
// function library cost model.
func (e *Evaluator) threadTime(f *model.Function, th int) (sim.Duration, error) {
	impl, err := funclib.Lookup(f.Kind)
	if err != nil {
		return 0, err
	}
	blocks := func(ports []*model.Port) (map[string]*funclib.Block, error) {
		out := map[string]*funclib.Block{}
		for _, p := range ports {
			reg, err := p.Partition(th)
			if err != nil {
				return nil, err
			}
			out[p.Name] = &funclib.Block{Region: reg}
		}
		return out, nil
	}
	ins, err := blocks(f.Inputs)
	if err != nil {
		return 0, err
	}
	outs, err := blocks(f.Outputs)
	if err != nil {
		return 0, err
	}
	ctx := &funclib.Context{FuncName: f.Name, Params: f.Params, Thread: th, Threads: f.Threads}
	c := impl.Cost(ctx, ins, outs)
	return e.Platform.FlopTime(c.Flops) + e.Platform.CopyTime(c.CopyBytes), nil
}

// buildFlows derives the data movements from the striping relationships on
// each arc (the same computation the glue generator performs).
func (e *Evaluator) buildFlows() error {
	for _, arc := range e.App.Arcs {
		sp, dp := arc.From, arc.To
		sf, df := sp.Fn, dp.Fn
		eb, err := sp.Type.Elem.WireBytes()
		if err != nil {
			return err
		}
		for j := 0; j < df.Threads; j++ {
			dreg, err := dp.Partition(j)
			if err != nil {
				return err
			}
			if sp.Striping == model.Replicated {
				e.flows = append(e.flows, flow{
					srcFn: sf.ID, srcThread: j % sf.Threads,
					dstFn: df.ID, dstThread: j,
					bytes: dreg.Elems() * eb,
				})
				continue
			}
			for i := 0; i < sf.Threads; i++ {
				sreg, err := sp.Partition(i)
				if err != nil {
					return err
				}
				x := sreg.Intersect(dreg)
				if x.Empty() {
					continue
				}
				e.flows = append(e.flows, flow{
					srcFn: sf.ID, srcThread: i,
					dstFn: df.ID, dstThread: j,
					bytes: x.Elems() * eb,
				})
			}
		}
	}
	return nil
}

// transferTime prices one flow under a node assignment.
func (e *Evaluator) transferTime(f flow, srcNode, dstNode int) sim.Duration {
	pl := &e.Platform
	if srcNode == dstNode {
		return pl.CopyTime(f.bytes)
	}
	var bw float64
	var lat sim.Duration
	if pl.SameBoard(srcNode, dstNode) {
		bw, lat = pl.IntraBW, pl.IntraLatency
	} else {
		bw, lat = pl.InterBW, pl.InterLatency
	}
	ser := sim.Duration(float64(f.bytes) / bw * 1e9)
	return pl.SendOverhead + pl.RecvOverhead + lat + ser
}

// Cost is the evaluated quality of a mapping (lower is better).
type Cost struct {
	// MaxNodeBusy is the busiest node's per-iteration time (load balance).
	MaxNodeBusy sim.Duration
	// Comm is the total communication time summed over flows.
	Comm sim.Duration
	// CriticalPath is the list-scheduled end-to-end latency estimate.
	CriticalPath sim.Duration
	// Total is the weighted objective.
	Total float64
}

// Weights combines the objectives; zero-valued weights fall back to the
// defaults (1, 1, 1).
type Weights struct {
	Load, Comm, Latency float64
	// LatencyBound, when positive, adds a steep penalty for estimated
	// critical paths beyond the bound ("optimizing over latency
	// constraints").
	LatencyBound sim.Duration
}

func (w Weights) withDefaults() Weights {
	if w.Load == 0 && w.Comm == 0 && w.Latency == 0 {
		w.Load, w.Comm, w.Latency = 1, 1, 1
	}
	return w
}

// genome is a flat thread->node assignment in e.tasks order.
type genome []int

// mappingFromGenome converts a genome to a model mapping.
func (e *Evaluator) mappingFromGenome(g genome) *model.Mapping {
	m := model.NewMapping()
	i := 0
	for _, f := range e.App.Functions {
		nodes := make([]int, f.Threads)
		for th := 0; th < f.Threads; th++ {
			nodes[th] = g[i]
			i++
		}
		m.Set(f.Name, nodes...)
	}
	return m
}

// genomeFromMapping flattens a mapping (which must be valid for the app).
func (e *Evaluator) genomeFromMapping(m *model.Mapping) (genome, error) {
	var g genome
	for _, f := range e.App.Functions {
		nodes, ok := m.Assign[f.Name]
		if !ok || len(nodes) != f.Threads {
			return nil, fmt.Errorf("atot: mapping incomplete for %q", f.Name)
		}
		g = append(g, nodes...)
	}
	return g, nil
}

// MappingFromAssign converts a flat thread->node assignment (App.Functions
// order, threads ascending — the GA's genome layout, shared with
// twin.Evaluator.PredictAssign) into a model mapping.
func (e *Evaluator) MappingFromAssign(assign []int) (*model.Mapping, error) {
	if len(assign) != len(e.tasks) {
		return nil, fmt.Errorf("atot: assignment has %d entries, want %d", len(assign), len(e.tasks))
	}
	return e.mappingFromGenome(assign), nil
}

// AssignFromMapping flattens a mapping (which must be valid for the app)
// into the GA's genome layout.
func (e *Evaluator) AssignFromMapping(m *model.Mapping) ([]int, error) {
	g, err := e.genomeFromMapping(m)
	return g, err
}

// Evaluate prices a mapping.
func (e *Evaluator) Evaluate(m *model.Mapping, w Weights) (Cost, error) {
	g, err := e.genomeFromMapping(m)
	if err != nil {
		return Cost{}, err
	}
	return e.evalGenome(g, w.withDefaults()), nil
}

// evalGenome prices one genome. It is pure with respect to the Evaluator
// (scratch state comes from a pool), so fitness evaluations may run
// concurrently — the GA's worker pool relies on this.
func (e *Evaluator) evalGenome(g genome, w Weights) Cost {
	s := e.scratch.Get().(*evalScratch)
	c := e.evalGenomeInto(g, w, s)
	e.scratch.Put(s)
	return c
}

func (e *Evaluator) evalGenomeInto(g genome, w Weights, s *evalScratch) Cost {
	nodeBusy := s.nodeBusy
	for i := range nodeBusy {
		nodeBusy[i] = 0
	}
	for i := range e.tasks {
		nodeBusy[g[i]] += e.taskNode[i][g[i]]
	}
	var comm sim.Duration
	so, ro := e.Platform.SendOverhead, e.Platform.RecvOverhead
	for fi := range e.flows {
		src, dst := g[e.flowSrc[fi]], g[e.flowDst[fi]]
		comm += e.flowTime(fi, src, dst)
		// Communication also occupies the endpoints.
		nodeBusy[src] += so
		nodeBusy[dst] += ro
	}
	var maxBusy sim.Duration
	for _, b := range nodeBusy {
		if b > maxBusy {
			maxBusy = b
		}
	}
	cp := e.criticalPath(g, s)
	c := Cost{MaxNodeBusy: maxBusy, Comm: comm, CriticalPath: cp}
	c.Total = w.Load*float64(maxBusy) + w.Comm*float64(comm) + w.Latency*float64(cp)
	if w.LatencyBound > 0 && cp > w.LatencyBound {
		c.Total += 10 * float64(cp-w.LatencyBound)
	}
	return c
}

// criticalPath list-schedules one iteration: each thread starts when its
// inputs have arrived AND its processor is free (threads sharing a node
// serialise), and transfers start when the producing thread finishes.
func (e *Evaluator) criticalPath(g genome, s *evalScratch) sim.Duration {
	// ready[fnSlot][thread] = earliest start; done[fnSlot][thread] = finish.
	for si := range s.ready {
		r, d := s.ready[si], s.done[si]
		for i := range r {
			r[i], d[i] = 0, 0
		}
	}
	nodeFree := s.nodeFree
	for i := range nodeFree {
		nodeFree[i] = 0
	}
	var finish sim.Duration
	for _, f := range e.order {
		slot := e.fnSlot[f.ID]
		ready := s.ready[slot]
		for _, fi := range e.incoming[slot] {
			fl := &e.flows[fi]
			src, dst := g[e.flowSrc[fi]], g[e.flowDst[fi]]
			arrive := s.done[e.fnSlot[fl.srcFn]][fl.srcThread] + e.flowTime(fi, src, dst)
			if arrive > ready[fl.dstThread] {
				ready[fl.dstThread] = arrive
			}
		}
		base := e.taskBase[slot]
		doneRow := s.done[slot]
		for th := 0; th < f.Threads; th++ {
			ti := base + th
			node := g[ti]
			start := ready[th]
			if nodeFree[node] > start {
				start = nodeFree[node]
			}
			end := start + e.taskNode[ti][node]
			doneRow[th] = end
			nodeFree[node] = end
			if end > finish {
				finish = end
			}
		}
	}
	return finish
}

// ScheduledTask is one entry of the estimated execution schedule.
type ScheduledTask struct {
	Fn     string
	Thread int
	Node   int
	Start  sim.Duration
	End    sim.Duration
}

// EstimateSchedule list-schedules one iteration of the mapped application
// and returns per-task start/end estimates sorted by start time ("scheduling
// of CPUs and busses").
func (e *Evaluator) EstimateSchedule(m *model.Mapping) ([]ScheduledTask, error) {
	g, err := e.genomeFromMapping(m)
	if err != nil {
		return nil, err
	}
	s := e.scratch.Get().(*evalScratch)
	defer e.scratch.Put(s)
	for si := range s.ready {
		r, d := s.ready[si], s.done[si]
		for i := range r {
			r[i], d[i] = 0, 0
		}
	}
	nodeFree := s.nodeFree
	for i := range nodeFree {
		nodeFree[i] = 0
	}
	var out []ScheduledTask
	for _, f := range e.order {
		slot := e.fnSlot[f.ID]
		ready := s.ready[slot]
		for _, fi := range e.incoming[slot] {
			fl := &e.flows[fi]
			src, dst := g[e.flowSrc[fi]], g[e.flowDst[fi]]
			arrive := s.done[e.fnSlot[fl.srcFn]][fl.srcThread] + e.flowTime(fi, src, dst)
			if arrive > ready[fl.dstThread] {
				ready[fl.dstThread] = arrive
			}
		}
		base := e.taskBase[slot]
		doneRow := s.done[slot]
		for th := 0; th < f.Threads; th++ {
			ti := base + th
			node := g[ti]
			start := ready[th]
			if nodeFree[node] > start {
				start = nodeFree[node]
			}
			end := start + e.taskNode[ti][node]
			doneRow[th] = end
			nodeFree[node] = end
			out = append(out, ScheduledTask{
				Fn: f.Name, Thread: th, Node: node,
				Start: start, End: end,
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Thread < out[j].Thread
	})
	return out, nil
}
