// Package atot reproduces the SAGE Architecture Trades and Optimization
// Tool's mapping capability (§1.1): "the genetic algorithm based
// partitioning and mapping capability of AToT assigns the application tasks
// to the multi-processor, heterogeneous architecture. AToT can be employed
// for total design optimization, which includes load balancing of CPU
// resources, optimizing over latency constraints, communication minimization
// and scheduling of CPUs and busses."
//
// The package provides an analytic cost model over (application, mapping,
// platform) triples — per-node load, communication volume priced by the
// fabric, and a critical-path latency estimate via list scheduling — plus a
// seeded, deterministic genetic algorithm that searches thread-to-node
// assignments against that model, and greedy/round-robin baselines for
// comparison.
package atot

import (
	"fmt"
	"sort"

	"repro/internal/funclib"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
)

// task identifies one thread of one function.
type task struct {
	fn     *model.Function
	thread int
}

// flow is one precomputed data movement between threads (mapping
// independent: derived purely from port striping).
type flow struct {
	srcFn, srcThread int // function IDs and thread indices
	dstFn, dstThread int
	bytes            int
}

// Evaluator prices mappings of one application on one platform. Build it
// once; Evaluate is called per GA candidate.
type Evaluator struct {
	App      *model.App
	Platform machine.Platform
	NumNodes int

	tasks []task
	// taskTime[fnID][thread] is the per-iteration busy time of a thread on
	// a baseline-speed node.
	taskTime map[int][]sim.Duration
	flows    []flow
	order    []*model.Function
	// speeds are per-node CPU multipliers (heterogeneous targets); nil
	// means homogeneous.
	speeds []float64
}

// SetNodeSpeeds installs per-node CPU speed multipliers matching the ones
// the simulated machine will run with (sagert.Options.NodeSpeeds), so the
// mapper optimises for the actual heterogeneous hardware.
func (e *Evaluator) SetNodeSpeeds(speeds []float64) {
	e.speeds = speeds
}

// nodeTime scales a baseline task time by the target node's speed.
func (e *Evaluator) nodeTime(d sim.Duration, node int) sim.Duration {
	if node < len(e.speeds) && e.speeds[node] > 0 {
		return sim.Duration(float64(d) / e.speeds[node])
	}
	return d
}

// NewEvaluator prepares the mapping-independent parts of the cost model.
func NewEvaluator(app *model.App, pl machine.Platform, numNodes int) (*Evaluator, error) {
	if err := app.Validate(); err != nil {
		return nil, err
	}
	if err := funclib.ValidateApp(app); err != nil {
		return nil, err
	}
	order, err := app.TopoOrder()
	if err != nil {
		return nil, err
	}
	e := &Evaluator{
		App: app, Platform: pl, NumNodes: numNodes,
		taskTime: map[int][]sim.Duration{},
		order:    order,
	}
	for _, f := range app.Functions {
		times := make([]sim.Duration, f.Threads)
		for th := 0; th < f.Threads; th++ {
			d, err := e.threadTime(f, th)
			if err != nil {
				return nil, err
			}
			times[th] = d
			e.tasks = append(e.tasks, task{fn: f, thread: th})
		}
		e.taskTime[f.ID] = times
	}
	if err := e.buildFlows(); err != nil {
		return nil, err
	}
	return e, nil
}

// threadTime estimates one thread's per-iteration compute time from the
// function library cost model.
func (e *Evaluator) threadTime(f *model.Function, th int) (sim.Duration, error) {
	impl, err := funclib.Lookup(f.Kind)
	if err != nil {
		return 0, err
	}
	blocks := func(ports []*model.Port) (map[string]*funclib.Block, error) {
		out := map[string]*funclib.Block{}
		for _, p := range ports {
			reg, err := p.Partition(th)
			if err != nil {
				return nil, err
			}
			out[p.Name] = &funclib.Block{Region: reg}
		}
		return out, nil
	}
	ins, err := blocks(f.Inputs)
	if err != nil {
		return 0, err
	}
	outs, err := blocks(f.Outputs)
	if err != nil {
		return 0, err
	}
	ctx := &funclib.Context{FuncName: f.Name, Params: f.Params, Thread: th, Threads: f.Threads}
	c := impl.Cost(ctx, ins, outs)
	return e.Platform.FlopTime(c.Flops) + e.Platform.CopyTime(c.CopyBytes), nil
}

// buildFlows derives the data movements from the striping relationships on
// each arc (the same computation the glue generator performs).
func (e *Evaluator) buildFlows() error {
	for _, arc := range e.App.Arcs {
		sp, dp := arc.From, arc.To
		sf, df := sp.Fn, dp.Fn
		eb, err := sp.Type.Elem.WireBytes()
		if err != nil {
			return err
		}
		for j := 0; j < df.Threads; j++ {
			dreg, err := dp.Partition(j)
			if err != nil {
				return err
			}
			if sp.Striping == model.Replicated {
				e.flows = append(e.flows, flow{
					srcFn: sf.ID, srcThread: j % sf.Threads,
					dstFn: df.ID, dstThread: j,
					bytes: dreg.Elems() * eb,
				})
				continue
			}
			for i := 0; i < sf.Threads; i++ {
				sreg, err := sp.Partition(i)
				if err != nil {
					return err
				}
				x := sreg.Intersect(dreg)
				if x.Empty() {
					continue
				}
				e.flows = append(e.flows, flow{
					srcFn: sf.ID, srcThread: i,
					dstFn: df.ID, dstThread: j,
					bytes: x.Elems() * eb,
				})
			}
		}
	}
	return nil
}

// transferTime prices one flow under a node assignment.
func (e *Evaluator) transferTime(f flow, srcNode, dstNode int) sim.Duration {
	pl := &e.Platform
	if srcNode == dstNode {
		return pl.CopyTime(f.bytes)
	}
	var bw float64
	var lat sim.Duration
	if pl.SameBoard(srcNode, dstNode) {
		bw, lat = pl.IntraBW, pl.IntraLatency
	} else {
		bw, lat = pl.InterBW, pl.InterLatency
	}
	ser := sim.Duration(float64(f.bytes) / bw * 1e9)
	return pl.SendOverhead + pl.RecvOverhead + lat + ser
}

// Cost is the evaluated quality of a mapping (lower is better).
type Cost struct {
	// MaxNodeBusy is the busiest node's per-iteration time (load balance).
	MaxNodeBusy sim.Duration
	// Comm is the total communication time summed over flows.
	Comm sim.Duration
	// CriticalPath is the list-scheduled end-to-end latency estimate.
	CriticalPath sim.Duration
	// Total is the weighted objective.
	Total float64
}

// Weights combines the objectives; zero-valued weights fall back to the
// defaults (1, 1, 1).
type Weights struct {
	Load, Comm, Latency float64
	// LatencyBound, when positive, adds a steep penalty for estimated
	// critical paths beyond the bound ("optimizing over latency
	// constraints").
	LatencyBound sim.Duration
}

func (w Weights) withDefaults() Weights {
	if w.Load == 0 && w.Comm == 0 && w.Latency == 0 {
		w.Load, w.Comm, w.Latency = 1, 1, 1
	}
	return w
}

// genome is a flat thread->node assignment in e.tasks order.
type genome []int

// mappingFromGenome converts a genome to a model mapping.
func (e *Evaluator) mappingFromGenome(g genome) *model.Mapping {
	m := model.NewMapping()
	i := 0
	for _, f := range e.App.Functions {
		nodes := make([]int, f.Threads)
		for th := 0; th < f.Threads; th++ {
			nodes[th] = g[i]
			i++
		}
		m.Set(f.Name, nodes...)
	}
	return m
}

// genomeFromMapping flattens a mapping (which must be valid for the app).
func (e *Evaluator) genomeFromMapping(m *model.Mapping) (genome, error) {
	var g genome
	for _, f := range e.App.Functions {
		nodes, ok := m.Assign[f.Name]
		if !ok || len(nodes) != f.Threads {
			return nil, fmt.Errorf("atot: mapping incomplete for %q", f.Name)
		}
		g = append(g, nodes...)
	}
	return g, nil
}

// Evaluate prices a mapping.
func (e *Evaluator) Evaluate(m *model.Mapping, w Weights) (Cost, error) {
	g, err := e.genomeFromMapping(m)
	if err != nil {
		return Cost{}, err
	}
	return e.evalGenome(g, w.withDefaults()), nil
}

// nodeOf looks up a task's node in a genome.
func (e *Evaluator) nodeIndex() map[[2]int]int {
	idx := map[[2]int]int{}
	for i, t := range e.tasks {
		idx[[2]int{t.fn.ID, t.thread}] = i
	}
	return idx
}

func (e *Evaluator) evalGenome(g genome, w Weights) Cost {
	idx := e.nodeIndex()
	nodeBusy := make([]sim.Duration, e.NumNodes)
	for i, t := range e.tasks {
		nodeBusy[g[i]] += e.nodeTime(e.taskTime[t.fn.ID][t.thread], g[i])
	}
	var comm sim.Duration
	for _, f := range e.flows {
		src := g[idx[[2]int{f.srcFn, f.srcThread}]]
		dst := g[idx[[2]int{f.dstFn, f.dstThread}]]
		t := e.transferTime(f, src, dst)
		comm += t
		// Communication also occupies the endpoints.
		nodeBusy[src] += e.Platform.SendOverhead
		nodeBusy[dst] += e.Platform.RecvOverhead
	}
	var maxBusy sim.Duration
	for _, b := range nodeBusy {
		if b > maxBusy {
			maxBusy = b
		}
	}
	cp := e.criticalPath(g, idx)
	c := Cost{MaxNodeBusy: maxBusy, Comm: comm, CriticalPath: cp}
	c.Total = w.Load*float64(maxBusy) + w.Comm*float64(comm) + w.Latency*float64(cp)
	if w.LatencyBound > 0 && cp > w.LatencyBound {
		c.Total += 10 * float64(cp-w.LatencyBound)
	}
	return c
}

// criticalPath list-schedules one iteration: each thread starts when its
// inputs have arrived AND its processor is free (threads sharing a node
// serialise), and transfers start when the producing thread finishes.
func (e *Evaluator) criticalPath(g genome, idx map[[2]int]int) sim.Duration {
	// ready[fnID][thread] = earliest start; done[fnID][thread] = finish.
	done := map[int][]sim.Duration{}
	ready := map[int][]sim.Duration{}
	for _, f := range e.App.Functions {
		ready[f.ID] = make([]sim.Duration, f.Threads)
		done[f.ID] = make([]sim.Duration, f.Threads)
	}
	// Group incoming flows by destination.
	incoming := map[int][]flow{}
	for _, fl := range e.flows {
		incoming[fl.dstFn] = append(incoming[fl.dstFn], fl)
	}
	nodeFree := make([]sim.Duration, e.NumNodes)
	var finish sim.Duration
	for _, f := range e.order {
		for _, fl := range incoming[f.ID] {
			src := g[idx[[2]int{fl.srcFn, fl.srcThread}]]
			dst := g[idx[[2]int{fl.dstFn, fl.dstThread}]]
			arrive := done[fl.srcFn][fl.srcThread] + e.transferTime(fl, src, dst)
			if arrive > ready[f.ID][fl.dstThread] {
				ready[f.ID][fl.dstThread] = arrive
			}
		}
		for th := 0; th < f.Threads; th++ {
			node := g[idx[[2]int{f.ID, th}]]
			start := ready[f.ID][th]
			if nodeFree[node] > start {
				start = nodeFree[node]
			}
			done[f.ID][th] = start + e.nodeTime(e.taskTime[f.ID][th], node)
			nodeFree[node] = done[f.ID][th]
			if done[f.ID][th] > finish {
				finish = done[f.ID][th]
			}
		}
	}
	return finish
}

// ScheduledTask is one entry of the estimated execution schedule.
type ScheduledTask struct {
	Fn     string
	Thread int
	Node   int
	Start  sim.Duration
	End    sim.Duration
}

// EstimateSchedule list-schedules one iteration of the mapped application
// and returns per-task start/end estimates sorted by start time ("scheduling
// of CPUs and busses").
func (e *Evaluator) EstimateSchedule(m *model.Mapping) ([]ScheduledTask, error) {
	g, err := e.genomeFromMapping(m)
	if err != nil {
		return nil, err
	}
	idx := e.nodeIndex()
	done := map[int][]sim.Duration{}
	ready := map[int][]sim.Duration{}
	for _, f := range e.App.Functions {
		ready[f.ID] = make([]sim.Duration, f.Threads)
		done[f.ID] = make([]sim.Duration, f.Threads)
	}
	incoming := map[int][]flow{}
	for _, fl := range e.flows {
		incoming[fl.dstFn] = append(incoming[fl.dstFn], fl)
	}
	nodeFree := make([]sim.Duration, e.NumNodes)
	var out []ScheduledTask
	for _, f := range e.order {
		for _, fl := range incoming[f.ID] {
			src := g[idx[[2]int{fl.srcFn, fl.srcThread}]]
			dst := g[idx[[2]int{fl.dstFn, fl.dstThread}]]
			arrive := done[fl.srcFn][fl.srcThread] + e.transferTime(fl, src, dst)
			if arrive > ready[f.ID][fl.dstThread] {
				ready[f.ID][fl.dstThread] = arrive
			}
		}
		for th := 0; th < f.Threads; th++ {
			node := g[idx[[2]int{f.ID, th}]]
			start := ready[f.ID][th]
			if nodeFree[node] > start {
				start = nodeFree[node]
			}
			done[f.ID][th] = start + e.nodeTime(e.taskTime[f.ID][th], node)
			nodeFree[node] = done[f.ID][th]
			out = append(out, ScheduledTask{
				Fn: f.Name, Thread: th, Node: node,
				Start: start, End: done[f.ID][th],
			})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Thread < out[j].Thread
	})
	return out, nil
}
