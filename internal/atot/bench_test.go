package atot

import (
	"testing"

	"repro/internal/apps"
	"repro/internal/platforms"
)

func benchEvaluator(b *testing.B, n, threads, nodes int) *Evaluator {
	b.Helper()
	app, err := apps.FFT2D(n, threads)
	if err != nil {
		b.Fatal(err)
	}
	e, err := NewEvaluator(app, platforms.CSPI(), nodes)
	if err != nil {
		b.Fatal(err)
	}
	return e
}

// BenchmarkEvalGenome is the GA's inner loop: one fitness evaluation. The
// memoized tables and pooled scratch make it allocation-free.
func BenchmarkEvalGenome(b *testing.B) {
	e := benchEvaluator(b, 256, 8, 8)
	g := make(genome, len(e.tasks))
	for i := range g {
		g[i] = i % e.NumNodes
	}
	w := Weights{}.withDefaults()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.evalGenome(g, w)
	}
}

// BenchmarkMapGA prices a short end-to-end search (breeding + batch-scored
// fitness on the worker pool).
func BenchmarkMapGA(b *testing.B) {
	e := benchEvaluator(b, 128, 8, 8)
	cfg := GAConfig{Population: 32, Generations: 20, Seed: 3}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := MapGA(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
