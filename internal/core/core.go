// Package core implements the paper's primary contribution as one
// orchestrated pipeline: automatic source-code generation plus the run-time
// infrastructure that executes it. Build takes a validated application
// model, a thread-to-processor mapping and a platform, runs the Alter
// glue-code generator, verifies the resulting runtime tables, and returns a
// Program that can be executed any number of times on fresh simulated
// machines. The sage facade, the experiment harness and the CLI tools all
// go through this package.
package core

import (
	"fmt"

	"repro/internal/funclib"
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sagert"
	"repro/internal/viz"
)

// Program is generated glue code bound to its target platform: the
// executable artifact of Figure 1.0's pipeline.
//
// A Program is immutable after Build: the runtime tables, platform
// descriptor and glue listings are only ever read. Run creates a fresh
// simulated machine (its own sim.Kernel, nodes and MPI world) per call and
// shuts it down on exit, so a single Program may be executed from many
// goroutines concurrently — the parallel experiment engine relies on this.
// The packages underneath hold no mutable process-wide state either: the
// funclib and platforms registries are written only during init, and
// isspl's twiddle cache is lock-guarded.
type Program struct {
	Platform  machine.Platform
	NumNodes  int
	Artifacts *gluegen.Output
}

// Tables exposes the verified runtime tables.
func (p *Program) Tables() *gluegen.Tables { return p.Artifacts.Tables }

// Build validates the model against the function library and the mapping
// against the node count, then generates and verifies glue code with the
// standard Alter script. Build reads the model and writes only its own
// fresh artifacts (each call runs a private Alter interpreter), so distinct
// Build calls may run concurrently as long as they don't share a mutable
// *model.App.
func Build(app *model.App, mapping *model.Mapping, pl machine.Platform, nodes int) (*Program, error) {
	return BuildWithScript(app, mapping, pl, nodes, gluegen.StandardScript)
}

// BuildWithScript is Build with a custom Alter generator script.
func BuildWithScript(app *model.App, mapping *model.Mapping, pl machine.Platform, nodes int, script string) (*Program, error) {
	if app == nil {
		return nil, fmt.Errorf("core: nil application")
	}
	if mapping == nil {
		return nil, fmt.Errorf("core: nil mapping")
	}
	if err := funclib.ValidateApp(app); err != nil {
		return nil, err
	}
	out, err := gluegen.GenerateWith(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: nodes}, script)
	if err != nil {
		return nil, err
	}
	return &Program{Platform: pl, NumNodes: nodes, Artifacts: out}, nil
}

// Run executes the program on a fresh simulated machine.
func (p *Program) Run(opts sagert.Options) (*sagert.Result, error) {
	return sagert.Run(p.Artifacts.Tables, p.Platform, opts)
}

// RunTraced executes with every function probed and returns the Visualizer
// trace alongside the result.
func (p *Program) RunTraced(opts sagert.Options) (*sagert.Result, *viz.Trace, error) {
	trace, hook := viz.Collector()
	opts.ProbeAll = true
	opts.Trace = hook
	res, err := p.Run(opts)
	if err != nil {
		return nil, nil, err
	}
	return res, trace, nil
}
