package core

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/gluegen"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
)

func buildProgram(t *testing.T) *Program {
	t.Helper()
	app, err := apps.CornerTurn(64, 4)
	if err != nil {
		t.Fatal(err)
	}
	mapping, err := model.SpreadParallel(app, 4)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Build(app, mapping, platforms.CSPI(), 4)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestBuildAndRun(t *testing.T) {
	prog := buildProgram(t)
	if prog.Tables() == nil || len(prog.Tables().Functions) != 4 {
		t.Fatalf("tables = %+v", prog.Tables())
	}
	res, err := prog.Run(sagert.Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Output == nil || res.Period <= 0 {
		t.Fatalf("result = %+v", res)
	}
	// A program can run repeatedly, each time on a fresh machine, with
	// identical virtual timing.
	res2, err := prog.Run(sagert.Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Period != res2.Period {
		t.Fatalf("re-run diverged: %v vs %v", res.Period, res2.Period)
	}
}

func TestRunTraced(t *testing.T) {
	prog := buildProgram(t)
	res, trace, err := prog.RunTraced(sagert.Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil || len(trace.Events) == 0 {
		t.Fatal("no trace collected")
	}
}

func TestBuildErrors(t *testing.T) {
	app, _ := apps.CornerTurn(64, 4)
	mapping, _ := model.SpreadParallel(app, 4)
	if _, err := Build(nil, mapping, platforms.CSPI(), 4); err == nil {
		t.Fatal("nil app accepted")
	}
	if _, err := Build(app, nil, platforms.CSPI(), 4); err == nil {
		t.Fatal("nil mapping accepted")
	}
	// Unknown kind caught by the library validation layer.
	bad := model.NewApp("bad")
	mt, _ := bad.AddType(&model.DataType{Name: "m", Rows: 8, Cols: 8, Elem: model.ElemComplex})
	f := bad.AddFunction(&model.Function{Name: "f", Kind: "warp", Threads: 1})
	f.AddOutput("out", mt, model.ByRows)
	badMap := model.NewMapping()
	badMap.Set("f", 0)
	if _, err := Build(bad, badMap, platforms.CSPI(), 1); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestBuildWithScript(t *testing.T) {
	app, _ := apps.CornerTurn(32, 2)
	mapping, _ := model.SpreadParallel(app, 2)
	prog, err := BuildWithScript(app, mapping, platforms.CSPI(), 2, gluegen.StandardScript)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prog.Artifacts.GlueSource, "SAGE auto-generated") {
		t.Fatal("glue listing missing")
	}
	if _, err := BuildWithScript(app, mapping, platforms.CSPI(), 2, "(nope)"); err == nil {
		t.Fatal("broken script accepted")
	}
}
