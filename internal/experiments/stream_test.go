package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/stream"
	"repro/internal/trace"
)

// loadStreamScenario reads the committed remap scenario — the golden case
// behind the subsystem's remapping claim, shared with CI's remap check.
func loadStreamScenario(t *testing.T) *stream.Scenario {
	t.Helper()
	f, err := os.Open(filepath.Join("testdata", "stream_remap.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc, err := stream.ReadScenario(f)
	if err != nil {
		t.Fatal(err)
	}
	return sc
}

// TestStreamCompareImproves: on the committed scenario the remapped run
// migrates threads off the stalling node and strictly reduces late+shed —
// the acceptance criterion of the streaming subsystem.
func TestStreamCompareImproves(t *testing.T) {
	s, err := RunStreamCompare(StreamCompareConfig{Scenario: loadStreamScenario(t)})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Static.Remaps) != 0 {
		t.Fatal("static cell remapped")
	}
	if len(s.Remap.Remaps) == 0 {
		t.Fatal("remap cell never remapped")
	}
	if !s.Improved() {
		t.Fatalf("remapping did not improve: static %d late+shed, remap %d",
			s.Static.Late+s.Static.Shed, s.Remap.Late+s.Remap.Shed)
	}
}

// TestStreamCompareDeterminism: byte-identical comparison at Parallelism 1
// and 8, traced or not.
func TestStreamCompareDeterminism(t *testing.T) {
	sc := loadStreamScenario(t)
	ref, err := RunStreamCompare(StreamCompareConfig{Scenario: sc, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{1, 8} {
		for _, traced := range []bool{false, true} {
			var tr *trace.Trace
			if traced {
				tr = trace.NewTrace()
			}
			got, err := RunStreamCompare(StreamCompareConfig{Scenario: sc, Parallelism: parallelism, Trace: tr})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("parallelism=%d traced=%v: comparison differs from sequential untraced reference",
					parallelism, traced)
			}
			if got.Format() != ref.Format() {
				t.Fatalf("parallelism=%d traced=%v: formatted table differs", parallelism, traced)
			}
		}
	}
}

// TestStreamCompareGolden pins the formatted comparison to a checked-in
// golden file. Regenerate with UPDATE_GOLDEN=1.
func TestStreamCompareGolden(t *testing.T) {
	s, err := RunStreamCompare(StreamCompareConfig{Scenario: loadStreamScenario(t)})
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(s.Format())
	golden := filepath.Join("testdata", "streamcompare.golden")
	if update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("stream comparison drifted from %s (set UPDATE_GOLDEN=1 to regenerate):\n--- want ---\n%s\n--- got ---\n%s",
			golden, want, got)
	}
}

// TestStreamCompareTrace: a traced comparison exports a valid Chrome trace
// carrying stream-layer events, identically at any parallelism.
func TestStreamCompareTrace(t *testing.T) {
	sc := loadStreamScenario(t)
	export := func(parallelism int) []byte {
		tr := trace.NewTrace()
		if _, err := RunStreamCompare(StreamCompareConfig{Scenario: sc, Parallelism: parallelism, Trace: tr}); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := export(1)
	par := export(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("stream trace differs between Parallelism=1 (%d bytes) and Parallelism=8 (%d bytes)", len(seq), len(par))
	}
	stats, err := trace.ValidateChrome(seq)
	if err != nil {
		t.Fatalf("stream comparison trace rejected: %v", err)
	}
	if stats.Streams == 0 {
		t.Fatal("no stream-category events in comparison trace")
	}
}

// TestStreamCompareErrors covers the rejection paths.
func TestStreamCompareErrors(t *testing.T) {
	if _, err := RunStreamCompare(StreamCompareConfig{}); err == nil {
		t.Error("nil scenario accepted")
	}
	sc := loadStreamScenario(t)
	if _, err := RunStreamCompare(StreamCompareConfig{Scenario: sc.Static()}); err == nil {
		t.Error("scenario without remap accepted")
	}
	bad := *sc
	bad.App = "nope"
	if _, err := RunStreamCompare(StreamCompareConfig{Scenario: &bad}); err == nil {
		t.Error("invalid scenario accepted")
	}
}
