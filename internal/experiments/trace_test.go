package experiments

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// traceTestConfig is a small Table 1.0 grid used by the determinism
// regression tests below: big enough to exercise both apps and the
// parallel pool, small enough for the race detector.
func traceTestConfig(parallelism int, tr *trace.Trace) Table1Config {
	return Table1Config{
		Sizes: []int{16},
		Nodes: []int{2, 4},
		Protocol: Protocol{
			Repetitions: 2,
			Iterations:  2,
			Parallelism: parallelism,
			Trace:       tr,
		},
	}
}

// TestTracingDoesNotPerturbResults is the regression test for the
// trace layer's observe-only contract: a traced table must deep-equal an
// untraced one, sequentially and under the parallel pool.
func TestTracingDoesNotPerturbResults(t *testing.T) {
	for _, parallelism := range []int{1, 8} {
		plain, err := RunTable1(traceTestConfig(parallelism, nil))
		if err != nil {
			t.Fatal(err)
		}
		traced, err := RunTable1(traceTestConfig(parallelism, trace.NewTrace()))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(plain, traced) {
			t.Fatalf("parallelism=%d: tracing changed the results:\nuntraced: %+v\ntraced:   %+v",
				parallelism, plain, traced)
		}
	}
}

// TestTraceIdenticalAcrossParallelism pins the sweep-order merge: the
// exported trace must be byte-identical whether the cells ran on one
// worker or eight.
func TestTraceIdenticalAcrossParallelism(t *testing.T) {
	export := func(parallelism int) []byte {
		tr := trace.NewTrace()
		if _, err := RunTable1(traceTestConfig(parallelism, tr)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := export(1)
	par := export(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("trace export differs between Parallelism=1 (%d bytes) and Parallelism=8 (%d bytes)",
			len(seq), len(par))
	}
	// And it must be a valid Chrome trace carrying all the layers the
	// table's runs produce.
	stats, err := trace.ValidateChrome(seq)
	if err != nil {
		t.Fatal(err)
	}
	for _, layer := range []string{"sim", "sagert", "mpi", "handcoded"} {
		if stats.Cats[layer] == 0 {
			t.Fatalf("table trace missing %s-layer spans (cats: %v)", layer, stats.Cats)
		}
	}
}
