package experiments

import (
	"errors"
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunPoolPreservesInputOrder(t *testing.T) {
	for _, par := range []int{0, 1, 2, 7, 64} {
		got, err := runPool(par, 20, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("parallelism %d: %v", par, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("parallelism %d: result[%d] = %d, want %d", par, i, v, i*i)
			}
		}
	}
}

func TestRunPoolReturnsLowestIndexError(t *testing.T) {
	boom := func(i int) (int, error) {
		if i == 3 || i == 11 {
			return 0, fmt.Errorf("job %d failed", i)
		}
		return i, nil
	}
	for _, par := range []int{1, 4} {
		_, err := runPool(par, 16, boom)
		if err == nil || err.Error() != "job 3 failed" {
			t.Fatalf("parallelism %d: err = %v, want job 3's error", par, err)
		}
	}
}

func TestRunPoolRunsEveryJobExactlyOnce(t *testing.T) {
	var calls [50]int32
	if _, err := runPool(8, len(calls), func(i int) (struct{}, error) {
		atomic.AddInt32(&calls[i], 1)
		return struct{}{}, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, c := range calls {
		if c != 1 {
			t.Fatalf("job %d ran %d times", i, c)
		}
	}
}

// TestRunPoolEarlyCancelStopsDispatch is the regression test for the
// first-error cancellation: one failing job must stop the dispatcher from
// handing out the rest of a large batch. Workers that already hold an index
// finish it, so at most a few jobs beyond the failure ever execute.
func TestRunPoolEarlyCancelStopsDispatch(t *testing.T) {
	const n, par = 1000, 4
	var executed atomic.Int32
	_, err := runPool(par, n, func(i int) (int, error) {
		executed.Add(1)
		if i == 0 {
			return 0, errors.New("job 0 failed")
		}
		time.Sleep(50 * time.Millisecond)
		return i, nil
	})
	if err == nil || err.Error() != "job 0 failed" {
		t.Fatalf("err = %v, want job 0's error", err)
	}
	// Without cancellation all n jobs run. With it, only the jobs dispatched
	// before the failure became visible can run: the failing job, the workers'
	// in-flight indices, and at most one send completed concurrently with the
	// failure — comfortably under 2*parallelism.
	if got := executed.Load(); got > 2*par {
		t.Fatalf("executed %d jobs after an early failure, want <= %d", got, 2*par)
	}
}

// TestRunPoolEarlyCancelKeepsLowestIndexError: cancellation must not change
// which error is reported. A slow failure at index 0 and an instant failure
// at index 1 race; the batch still reports index 0's error, exactly as a
// sequential loop would.
func TestRunPoolEarlyCancelKeepsLowestIndexError(t *testing.T) {
	_, err := runPool(2, 100, func(i int) (int, error) {
		switch i {
		case 0:
			time.Sleep(20 * time.Millisecond)
			return 0, errors.New("job 0 failed")
		case 1:
			return 0, errors.New("job 1 failed")
		default:
			time.Sleep(time.Millisecond)
			return i, nil
		}
	})
	if err == nil || err.Error() != "job 0 failed" {
		t.Fatalf("err = %v, want the lowest-index (job 0) error", err)
	}
}

func TestRunPoolZeroJobs(t *testing.T) {
	got, err := runPool(4, 0, func(i int) (int, error) { return 0, errors.New("never called") })
	if err != nil || len(got) != 0 {
		t.Fatalf("got %v, %v", got, err)
	}
}

// TestTable1ParallelMatchesSequential is the engine's determinism contract:
// the same grid swept with an 8-worker pool must be deep-equal — and render
// byte-identical — to the sequential sweep. Virtual time must never depend
// on host concurrency.
func TestTable1ParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) *Table1 {
		t.Helper()
		proto := Quick()
		proto.Parallelism = parallelism
		tbl, err := RunTable1(Table1Config{
			Sizes:    []int{64, 128},
			Nodes:    []int{2, 4, 8},
			Protocol: proto,
		})
		if err != nil {
			t.Fatal(err)
		}
		return tbl
	}
	seq := run(1)
	par := run(8)
	// Protocol (carrying the differing Parallelism) is part of the struct;
	// the measured content must match exactly.
	par.Protocol = seq.Protocol
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("parallel sweep diverged from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s",
			seq.Format(), par.Format())
	}
	if seq.Format() != par.Format() {
		t.Fatal("formatted tables differ byte-wise")
	}
}

// TestCrossVendorParallelMatchesSequential covers the larger sweep shape
// (platform x app x nodes) through the same pool.
func TestCrossVendorParallelMatchesSequential(t *testing.T) {
	run := func(parallelism int) *CrossVendor {
		t.Helper()
		proto := Quick()
		proto.Parallelism = parallelism
		cv, err := RunCrossVendor(128, []int{2, 4}, proto)
		if err != nil {
			t.Fatal(err)
		}
		return cv
	}
	if seq, par := run(1), run(8); !reflect.DeepEqual(seq, par) {
		t.Fatalf("cross-vendor sweep diverged:\n%s\nvs\n%s", seq.Format(), par.Format())
	}
}
