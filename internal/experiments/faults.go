package experiments

import (
	"fmt"
	"strings"

	"repro/internal/fault"
	"repro/internal/machine"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"
	"repro/internal/trace"
)

// DefaultFaultSeed is the fault-plan seed the sweep uses when the config
// leaves it zero (any fixed value works; determinism only needs it pinned).
const DefaultFaultSeed = 7

// FaultSweepConfig parameterises a fault sweep; zero values select defaults.
type FaultSweepConfig struct {
	App      AppKind // default Corner Turn (the communication-bound benchmark)
	Platform machine.Platform
	N        int       // matrix edge, default 256
	Nodes    int       // default 4
	Rates    []float64 // per-message drop rates, default {0, 0.05, 0.20}
	Seed     int64     // fault-plan seed, default DefaultFaultSeed
	Protocol Protocol
	Options  sagert.Options
}

func (c FaultSweepConfig) withDefaults() FaultSweepConfig {
	if c.App == "" {
		c.App = AppCornerTurn
	}
	if c.Platform.Name == "" {
		c.Platform = platforms.CSPI()
	}
	if c.N == 0 {
		c.N = 256
	}
	if c.Nodes == 0 {
		c.Nodes = 4
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{0, 0.05, 0.20}
	}
	if c.Seed == 0 {
		c.Seed = DefaultFaultSeed
	}
	c.Protocol = c.Protocol.withDefaults()
	return c
}

// FaultRow is one fault rate's hand-vs-SAGE comparison.
type FaultRow struct {
	Rate       float64
	Hand, Sage sim.Duration
	// HandSlow and SageSlow are slowdown factors relative to the fault-free
	// run of the same implementation (1.0 at rate 0).
	HandSlow, SageSlow float64
	PctOfHand          float64 // 100 * Hand / Sage at this fault rate
}

// FaultSweep reports how injected link faults degrade the hand-coded baseline
// and the resilient SAGE runtime. Every row derives from the same seeded
// plan family, so the whole table is reproducible byte for byte at any
// Protocol.Parallelism and with tracing on or off.
type FaultSweep struct {
	App      AppKind
	Platform string
	N, Nodes int
	Seed     int64
	Protocol Protocol
	Rows     []FaultRow
}

// RunFaultSweep measures overhead versus fault rate: for each rate it runs
// the hand-coded baseline and the SAGE runtime under a drop-all-links plan
// (rate 0 runs fault-free) and normalises against the fault-free run. Cells
// fan out across the Protocol.Parallelism pool like every other sweep.
func RunFaultSweep(cfg FaultSweepConfig) (*FaultSweep, error) {
	c := cfg.withDefaults()
	out := &FaultSweep{App: c.App, Platform: c.Platform.Name, N: c.N, Nodes: c.Nodes,
		Seed: c.Seed, Protocol: c.Protocol}
	type cellOut struct {
		hand, sage sim.Duration
		cols       []*trace.Collector
	}
	// Cell 0 is the fault-free reference; cell i+1 runs rate i.
	runCell := func(plan *fault.Plan) (cellOut, error) {
		proto := c.Protocol
		proto.Faults = plan
		hand, hcols, err := runHand(c.App, c.Platform, c.Nodes, c.N, proto)
		if err != nil {
			return cellOut{}, err
		}
		sage, scols, err := runSage(c.App, c.Platform, c.Nodes, c.N, proto, c.Options)
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{hand: hand, sage: sage, cols: append(hcols, scols...)}, nil
	}
	outs, err := runPool(c.Protocol.Parallelism, 1+len(c.Rates), func(i int) (cellOut, error) {
		var plan *fault.Plan
		if i > 0 && c.Rates[i-1] > 0 {
			plan = fault.DropAll(c.Seed, c.Rates[i-1])
		}
		co, err := runCell(plan)
		if err != nil {
			rate := 0.0
			if i > 0 {
				rate = c.Rates[i-1]
			}
			return cellOut{}, fmt.Errorf("experiments: fault sweep rate %g: %w", rate, err)
		}
		return co, nil
	})
	if err != nil {
		return nil, err
	}
	mergeTrace(c.Protocol.Trace, outs, func(co cellOut) []*trace.Collector { return co.cols })
	// Trace is an output channel and Parallelism a host-execution knob —
	// neither is a result parameter, so drop both from the stored protocol:
	// a sweep must compare deep-equal however it was executed.
	out.Protocol.Trace = nil
	out.Protocol.Parallelism = 0
	base := outs[0]
	for i, rate := range c.Rates {
		co := outs[i+1]
		out.Rows = append(out.Rows, FaultRow{
			Rate: rate, Hand: co.hand, Sage: co.sage,
			HandSlow:  float64(co.hand) / float64(base.hand),
			SageSlow:  float64(co.sage) / float64(base.sage),
			PctOfHand: 100 * float64(co.hand) / float64(co.sage),
		})
	}
	return out, nil
}

// Format renders the sweep as an overhead-versus-fault-rate table.
func (s *FaultSweep) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep — %s %dx%d on %s, %d nodes, plan seed %d\n",
		s.App, s.N, s.N, s.Platform, s.Nodes, s.Seed)
	fmt.Fprintf(&b, "(protocol: %d executions x %d iterations; drop faults on all links,\n",
		s.Protocol.Repetitions, s.Protocol.Iterations)
	fmt.Fprintf(&b, " MPI retry protocol on both, SAGE resilient runtime mode on top)\n\n")
	fmt.Fprintf(&b, "%7s  %14s %8s  %14s %8s  %10s\n",
		"rate", "Hand Coded", "x fault0", "SAGE AutoGen", "x fault0", "% of Hand")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%6.1f%%  %14v %8.3f  %14v %8.3f  %9.1f%%\n",
			100*r.Rate, r.Hand, r.HandSlow, r.Sage, r.SageSlow, r.PctOfHand)
	}
	return b.String()
}
