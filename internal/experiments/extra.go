package experiments

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/atot"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"
	"repro/internal/trace"
)

// ---------------------------------------------------------------------------
// §3.4 two-node anomaly
// ---------------------------------------------------------------------------

// TwoNode reproduces the §3.4 observation: "A performance hit was taken on a
// two-node configuration. Here, the SAGE run-time buffer management scheme
// assigns unique logical buffers to the data per function which can cause
// extra data access times."
type TwoNode struct {
	N    int
	Rows []Row // corner turn at 2, 4, 8 nodes
}

// RunTwoNode measures the corner turn across node counts, one pooled run per
// node count.
func RunTwoNode(pl machine.Platform, n int, proto Protocol) (*TwoNode, error) {
	proto = proto.withDefaults()
	nodeCounts := []int{2, 4, 8}
	type cellOut struct {
		row  Row
		cols []*trace.Collector
	}
	outs, err := runPool(proto.Parallelism, len(nodeCounts), func(i int) (cellOut, error) {
		nodes := nodeCounts[i]
		hand, hcols, err := runHand(AppCornerTurn, pl, nodes, n, proto)
		if err != nil {
			return cellOut{}, err
		}
		sage, scols, err := runSage(AppCornerTurn, pl, nodes, n, proto, sagert.Options{})
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{
			row: Row{App: AppCornerTurn, N: n, Nodes: nodes,
				Hand: hand, Sage: sage, PctOfHand: 100 * float64(hand) / float64(sage)},
			cols: append(hcols, scols...),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	mergeTrace(proto.Trace, outs, func(co cellOut) []*trace.Collector { return co.cols })
	out := &TwoNode{N: n}
	for _, co := range outs {
		out.Rows = append(out.Rows, co.row)
	}
	return out, nil
}

// Format renders the anomaly table.
func (t *TwoNode) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§3.4 two-node corner-turn anomaly (%d x %d, CSPI buffer scheme)\n\n", t.N, t.N)
	fmt.Fprintf(&b, "%6s  %14s %14s %14s\n", "Nodes", "Hand Coded", "SAGE AutoGen", "% of Hand")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%6d  %14v %14v %13.1f%%\n", r.Nodes, r.Hand, r.Sage, r.PctOfHand)
	}
	return b.String()
}

// WorstIsTwoNodes reports whether the 2-node configuration shows the largest
// overhead, as the paper observed.
func (t *TwoNode) WorstIsTwoNodes() bool {
	if len(t.Rows) == 0 {
		return false
	}
	worst := t.Rows[0]
	for _, r := range t.Rows[1:] {
		if r.PctOfHand < worst.PctOfHand {
			worst = r
		}
	}
	return worst.Nodes == 2
}

// ---------------------------------------------------------------------------
// §4 aggregate efficiency + future-work optimisation
// ---------------------------------------------------------------------------

// Aggregate reproduces the conclusion's headline numbers: the overall
// percentage of hand-coded performance across both applications, and the
// same figure with the announced buffer optimisation enabled (the "90% of
// hand coded performance" work-in-progress).
type Aggregate struct {
	Baseline  *Table1
	Optimized *Table1
}

// RunAggregate runs the Table 1.0 grid twice.
func RunAggregate(cfg Table1Config) (*Aggregate, error) {
	base, err := RunTable1(cfg)
	if err != nil {
		return nil, err
	}
	optCfg := cfg
	optCfg.Options.OptimizedBuffers = true
	opt, err := RunTable1(optCfg)
	if err != nil {
		return nil, err
	}
	return &Aggregate{Baseline: base, Optimized: opt}, nil
}

// Format renders the aggregate claim.
func (a *Aggregate) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "§4 aggregate efficiency of SAGE auto-generated code\n\n")
	fmt.Fprintf(&b, "%-28s %10s %12s %10s\n", "Configuration", "2D FFT", "Corner Turn", "Overall")
	fmt.Fprintf(&b, "%-28s %9.1f%% %11.1f%% %9.1f%%\n", "released glue generator",
		a.Baseline.FFTAvg, a.Baseline.CTAvg, a.Baseline.OverallAvg)
	fmt.Fprintf(&b, "%-28s %9.1f%% %11.1f%% %9.1f%%\n", "optimized buffers (future)",
		a.Optimized.FFTAvg, a.Optimized.CTAvg, a.Optimized.OverallAvg)
	return b.String()
}

// ---------------------------------------------------------------------------
// Cross-vendor comparison (§3.1, after the MITRE study)
// ---------------------------------------------------------------------------

// VendorRow is one (platform, app, nodes) measurement of the hand-coded
// benchmarks, vendor MPI included.
type VendorRow struct {
	Platform string
	App      AppKind
	Nodes    int
	Latency  sim.Duration
}

// CrossVendor holds the sweep.
type CrossVendor struct {
	N    int
	Rows []VendorRow
}

// RunCrossVendor sweeps both benchmarks across the four vendor platforms at
// several node counts, the shape of the MITRE cross-vendor data the paper
// cites.
func RunCrossVendor(n int, nodes []int, proto Protocol) (*CrossVendor, error) {
	proto = proto.withDefaults()
	if len(nodes) == 0 {
		nodes = []int{2, 4, 8, 16}
	}
	type cell struct {
		pl   machine.Platform
		kind AppKind
		nn   int
	}
	var cells []cell
	for _, pl := range platforms.Vendors() {
		for _, kind := range []AppKind{AppFFT2D, AppCornerTurn} {
			for _, nn := range nodes {
				cells = append(cells, cell{pl, kind, nn})
			}
		}
	}
	type cellOut struct {
		row  VendorRow
		cols []*trace.Collector
	}
	outs, err := runPool(proto.Parallelism, len(cells), func(i int) (cellOut, error) {
		cl := cells[i]
		lat, cols, err := runHand(cl.kind, cl.pl, cl.nn, n, proto)
		if err != nil {
			return cellOut{}, err
		}
		return cellOut{row: VendorRow{Platform: cl.pl.Name, App: cl.kind, Nodes: cl.nn, Latency: lat}, cols: cols}, nil
	})
	if err != nil {
		return nil, err
	}
	mergeTrace(proto.Trace, outs, func(co cellOut) []*trace.Collector { return co.cols })
	out := &CrossVendor{N: n}
	for _, co := range outs {
		out.Rows = append(out.Rows, co.row)
	}
	return out, nil
}

// Format renders the sweep grouped by application.
func (c *CrossVendor) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Cross-vendor performance, hand-coded benchmarks with vendor all-to-all (%d x %d)\n", c.N, c.N)
	for _, kind := range []AppKind{AppFFT2D, AppCornerTurn} {
		fmt.Fprintf(&b, "\n%s:\n%-10s", kind, "Platform")
		var nodeCounts []int
		seen := map[int]bool{}
		for _, r := range c.Rows {
			if r.App == kind && !seen[r.Nodes] {
				seen[r.Nodes] = true
				nodeCounts = append(nodeCounts, r.Nodes)
			}
		}
		sort.Ints(nodeCounts)
		for _, nn := range nodeCounts {
			fmt.Fprintf(&b, " %14s", fmt.Sprintf("%d nodes", nn))
		}
		fmt.Fprintln(&b)
		for _, pl := range platforms.Vendors() {
			fmt.Fprintf(&b, "%-10s", pl.Name)
			for _, nn := range nodeCounts {
				for _, r := range c.Rows {
					if r.App == kind && r.Platform == pl.Name && r.Nodes == nn {
						fmt.Fprintf(&b, " %14v", r.Latency)
					}
				}
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}

// Winner returns the fastest platform for an app at a node count.
func (c *CrossVendor) Winner(kind AppKind, nodes int) string {
	best, name := sim.Duration(1<<62), ""
	for _, r := range c.Rows {
		if r.App == kind && r.Nodes == nodes && r.Latency < best {
			best, name = r.Latency, r.Platform
		}
	}
	return name
}

// ---------------------------------------------------------------------------
// Portability (§1/§4): one model, regenerated per platform
// ---------------------------------------------------------------------------

// PortabilityRow is one platform's execution of the unmodified model.
type PortabilityRow struct {
	Platform string
	Latency  sim.Duration
	Verified bool
}

// Portability holds the study.
type Portability struct {
	App   AppKind
	N     int
	Nodes int
	Rows  []PortabilityRow
}

// RunPortability regenerates glue code for the same application model on
// every vendor platform and executes it, verifying the numerical output is
// identical everywhere ("the designer simply needs to re-generate the glue
// code for the new hardware platform", §4).
func RunPortability(kind AppKind, n, nodes int, proto Protocol) (*Portability, error) {
	proto = proto.withDefaults()
	out := &Portability{App: kind, N: n, Nodes: nodes}
	vendors := platforms.Vendors()
	results, err := runPool(proto.Parallelism, len(vendors), func(i int) (*sagert.Result, error) {
		pl := vendors[i]
		tbl, err := GenerateTables(kind, pl, nodes, n)
		if err != nil {
			return nil, err
		}
		o := sagert.Options{Iterations: proto.Iterations}
		applyShards(proto, tbl.Tables, pl, &o)
		return sagert.Run(tbl.Tables, pl, o)
	})
	if err != nil {
		return nil, err
	}
	// Verification order matches the sequential protocol: the first vendor's
	// output is the reference every other platform must reproduce exactly.
	reference := results[0]
	for i, res := range results {
		row := PortabilityRow{Platform: vendors[i].Name, Latency: res.AvgLatency()}
		if i == 0 {
			row.Verified = true
		} else {
			row.Verified = res.Output != nil && reference.Output != nil &&
				res.Output.MaxDiff(reference.Output) == 0
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

// Format renders the portability table.
func (p *Portability) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Portability: %s %dx%d model regenerated per platform (%d nodes)\n\n", p.App, p.N, p.N, p.Nodes)
	fmt.Fprintf(&b, "%-10s %14s %10s\n", "Platform", "Latency", "Output OK")
	for _, r := range p.Rows {
		fmt.Fprintf(&b, "%-10s %14v %10v\n", r.Platform, r.Latency, r.Verified)
	}
	return b.String()
}

// AllVerified reports whether every platform produced the identical result.
func (p *Portability) AllVerified() bool {
	for _, r := range p.Rows {
		if !r.Verified {
			return false
		}
	}
	return len(p.Rows) > 0
}

// ---------------------------------------------------------------------------
// Figure 1.0: the generation pipeline itself
// ---------------------------------------------------------------------------

// GenStudy quantifies one glue-code generation (Figure 1.0's models ->
// Alter -> source files pipeline).
type GenStudy struct {
	App        AppKind
	N, Nodes   int
	Functions  int
	Buffers    int
	Transfers  int
	TableLines int
	GlueLines  int
	Verified   bool
}

// RunGenStudy generates glue for a benchmark model and reports artifact
// statistics.
func RunGenStudy(kind AppKind, pl machine.Platform, n, nodes int) (*GenStudy, error) {
	out, err := GenerateTables(kind, pl, nodes, n)
	if err != nil {
		return nil, err
	}
	s := &GenStudy{App: kind, N: n, Nodes: nodes,
		Functions: len(out.Tables.Functions), Buffers: len(out.Tables.Buffers)}
	for _, b := range out.Tables.Buffers {
		s.Transfers += len(b.Transfers)
	}
	s.TableLines = strings.Count(out.TableSource, "\n")
	s.GlueLines = strings.Count(out.GlueSource, "\n")
	s.Verified = out.Tables.Verify() == nil
	return s, nil
}

// Format renders the study.
func (s *GenStudy) Format() string {
	return fmt.Sprintf("Figure 1.0 generation study: %s %dx%d on %d nodes: %d functions, %d logical buffers, %d striding transfers; %d table-source lines, %d glue-listing lines; verified=%v",
		s.App, s.N, s.N, s.Nodes, s.Functions, s.Buffers, s.Transfers, s.TableLines, s.GlueLines, s.Verified)
}

// ---------------------------------------------------------------------------
// Pipelining ablation: §3.3's period vs latency distinction
// ---------------------------------------------------------------------------

// Pipeline quantifies what the SAGE runtime's dataflow pipelining buys: the
// steady-state period of the pipelined runtime versus its own sequential
// per-data-set latency and the hand-coded loop.
type Pipeline struct {
	App                AppKind
	N, Nodes           int
	Hand               sim.Duration // hand-coded sequential loop
	SageSequential     sim.Duration // SAGE, one data set at a time
	SagePipelinePeriod sim.Duration // SAGE steady-state period
	SagePipelineLat    sim.Duration // SAGE per-data-set latency inside the full pipeline
}

// RunPipeline measures the three modes, pooled (they are independent runs on
// separate simulated machines).
func RunPipeline(kind AppKind, pl machine.Platform, n, nodes, iterations int) (*Pipeline, error) {
	if iterations < 4 {
		iterations = 4
	}
	out := &Pipeline{App: kind, N: n, Nodes: nodes}
	tbl, err := GenerateTables(kind, pl, nodes, n)
	if err != nil {
		return nil, err
	}
	modes := []func() error{
		func() (err error) {
			out.Hand, _, err = runHand(kind, pl, nodes, n, Protocol{Repetitions: 1, Iterations: iterations})
			return err
		},
		func() error {
			seq, err := sagert.Run(tbl.Tables, pl, sagert.Options{Iterations: iterations, Sequential: true})
			if err != nil {
				return err
			}
			out.SageSequential = seq.AvgLatency()
			return nil
		},
		func() error {
			pip, err := sagert.Run(tbl.Tables, pl, sagert.Options{Iterations: iterations})
			if err != nil {
				return err
			}
			out.SagePipelinePeriod = pip.Period
			out.SagePipelineLat = pip.AvgLatency()
			return nil
		},
	}
	if _, err := runPool(0, len(modes), func(i int) (struct{}, error) {
		return struct{}{}, modes[i]()
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// Format renders the ablation.
func (p *Pipeline) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Pipelining ablation: %s %dx%d on %d nodes (period vs latency, §3.3)\n\n", p.App, p.N, p.N, p.Nodes)
	fmt.Fprintf(&b, "%-34s %14s\n", "hand-coded loop (per data set)", p.Hand)
	fmt.Fprintf(&b, "%-34s %14s\n", "SAGE sequential latency", p.SageSequential)
	fmt.Fprintf(&b, "%-34s %14s\n", "SAGE pipelined period", p.SagePipelinePeriod)
	fmt.Fprintf(&b, "%-34s %14s\n", "SAGE pipelined latency", p.SagePipelineLat)
	return b.String()
}

// ---------------------------------------------------------------------------
// Scaling study: §3.1's "several node configurations (node counts)" axis
// ---------------------------------------------------------------------------

// ScalingRow is one node-count measurement.
type ScalingRow struct {
	Nodes       int
	Hand        sim.Duration
	Sage        sim.Duration
	HandSpeedup float64 // vs 1 node hand-coded
	SageSpeedup float64 // vs 1 node SAGE
}

// Scaling sweeps node counts for one application.
type Scaling struct {
	App  AppKind
	N    int
	Rows []ScalingRow
}

// RunScaling measures hand-coded and SAGE times across node counts and
// derives speedups relative to each version's single-node time.
func RunScaling(kind AppKind, pl machine.Platform, n int, nodeCounts []int, proto Protocol) (*Scaling, error) {
	proto = proto.withDefaults()
	if len(nodeCounts) == 0 {
		nodeCounts = []int{1, 2, 4, 8, 16}
	}
	out := &Scaling{App: kind, N: n}
	type point struct {
		hand, sage sim.Duration
		cols       []*trace.Collector
	}
	points, err := runPool(proto.Parallelism, len(nodeCounts), func(i int) (point, error) {
		hand, hcols, err := runHand(kind, pl, nodeCounts[i], n, proto)
		if err != nil {
			return point{}, err
		}
		sage, scols, err := runSage(kind, pl, nodeCounts[i], n, proto, sagert.Options{})
		if err != nil {
			return point{}, err
		}
		return point{hand, sage, append(hcols, scols...)}, nil
	})
	if err != nil {
		return nil, err
	}
	mergeTrace(proto.Trace, points, func(pt point) []*trace.Collector { return pt.cols })
	// Speedups are relative to the first configuration, derivable only once
	// every pooled measurement is in.
	var handBase, sageBase sim.Duration
	for i, pt := range points {
		if handBase == 0 {
			handBase, sageBase = pt.hand, pt.sage
		}
		out.Rows = append(out.Rows, ScalingRow{
			Nodes: nodeCounts[i], Hand: pt.hand, Sage: pt.sage,
			HandSpeedup: float64(handBase) / float64(pt.hand),
			SageSpeedup: float64(sageBase) / float64(pt.sage),
		})
	}
	return out, nil
}

// Format renders the sweep.
func (s *Scaling) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Scaling study: %s %dx%d (speedup vs the smallest configuration)\n\n", s.App, s.N, s.N)
	fmt.Fprintf(&b, "%6s %14s %10s %14s %10s\n", "Nodes", "Hand", "speedup", "SAGE", "speedup")
	for _, r := range s.Rows {
		fmt.Fprintf(&b, "%6d %14v %9.2fx %14v %9.2fx\n", r.Nodes, r.Hand, r.HandSpeedup, r.Sage, r.SageSpeedup)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// AToT model fidelity: do the analytic estimates rank mappings the way the
// simulator does? (The trades process is only useful if its cost model
// orders candidate architectures correctly.)
// ---------------------------------------------------------------------------

// EstimatePoint pairs an analytic estimate with a measurement for one
// mapping.
type EstimatePoint struct {
	Mapping   string
	Estimated sim.Duration // AToT critical-path estimate
	Measured  sim.Duration // simulated sequential latency
}

// EstimateAccuracy reports the comparison across several mappings.
type EstimateAccuracy struct {
	App    string
	Points []EstimatePoint
}

// RunEstimateAccuracy evaluates a handful of qualitatively different
// mappings with the AToT cost model and with the simulator.
func RunEstimateAccuracy(app *model.App, pl machine.Platform, nodes int) (*EstimateAccuracy, error) {
	ev, err := atot.NewEvaluator(app, pl, nodes)
	if err != nil {
		return nil, err
	}
	candidates := map[string]*model.Mapping{}
	if m, err := model.SpreadParallel(app, nodes); err == nil {
		candidates["spread"] = m
	}
	candidates["roundrobin"] = model.RoundRobin(app, nodes)
	packed := model.NewMapping()
	for _, f := range app.Functions {
		packed.Set(f.Name, make([]int, f.Threads)...)
	}
	candidates["packed"] = packed
	if m, err := atot.MapGreedy(ev); err == nil {
		candidates["greedy"] = m
	}

	out := &EstimateAccuracy{App: app.Name}
	for _, name := range []string{"packed", "roundrobin", "spread", "greedy"} {
		m, ok := candidates[name]
		if !ok {
			continue
		}
		cost, err := ev.Evaluate(m, atot.Weights{})
		if err != nil {
			return nil, err
		}
		tbl, err := gluegenGenerate(app, m, pl, nodes)
		if err != nil {
			return nil, err
		}
		res, err := sagert.Run(tbl, pl, sagert.Options{Iterations: 2, Sequential: true})
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, EstimatePoint{
			Mapping: name, Estimated: cost.CriticalPath, Measured: res.AvgLatency(),
		})
	}
	return out, nil
}

// RankAgreement counts concordant pairs: for how many mapping pairs does the
// estimate order agree with the measured order? Pairs whose values differ by
// less than 5% in either dimension are ties, not evidence either way.
// Returns concordant, total.
func (e *EstimateAccuracy) RankAgreement() (int, int) {
	distinct := func(a, b sim.Duration) bool {
		lo, hi := float64(a), float64(b)
		if lo > hi {
			lo, hi = hi, lo
		}
		return hi > 1.05*lo
	}
	concordant, total := 0, 0
	for i := 0; i < len(e.Points); i++ {
		for j := i + 1; j < len(e.Points); j++ {
			a, b := e.Points[i], e.Points[j]
			if !distinct(a.Estimated, b.Estimated) || !distinct(a.Measured, b.Measured) {
				continue
			}
			total++
			if (a.Estimated < b.Estimated) == (a.Measured < b.Measured) {
				concordant++
			}
		}
	}
	return concordant, total
}

// Format renders the comparison.
func (e *EstimateAccuracy) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AToT estimate fidelity for %s (critical-path estimate vs simulated latency)\n\n", e.App)
	fmt.Fprintf(&b, "%-12s %16s %16s\n", "Mapping", "estimated", "measured")
	for _, p := range e.Points {
		fmt.Fprintf(&b, "%-12s %16v %16v\n", p.Mapping, p.Estimated, p.Measured)
	}
	c, tot := e.RankAgreement()
	fmt.Fprintf(&b, "\nrank agreement: %d of %d mapping pairs ordered identically\n", c, tot)
	return b.String()
}

// ---------------------------------------------------------------------------
// Heterogeneous-architecture study (§1.1: "assigns the application tasks to
// the multi-processor, heterogeneous architecture")
// ---------------------------------------------------------------------------

// Heterogeneous compares speed-aware GA mapping against naive placement on a
// machine mixing fast and slow processors.
type Heterogeneous struct {
	App        string
	Speeds     []float64
	MeasuredGA sim.Duration
	MeasuredRR sim.Duration
}

// RunHeterogeneous maps an application onto a heterogeneous machine (per-node
// speed multipliers) with the speed-aware GA and with round-robin, and
// measures both on the simulator.
func RunHeterogeneous(app *model.App, pl machine.Platform, speeds []float64, ga atot.GAConfig) (*Heterogeneous, error) {
	nodes := len(speeds)
	ev, err := atot.NewEvaluator(app, pl, nodes)
	if err != nil {
		return nil, err
	}
	ev.SetNodeSpeeds(speeds)
	gaMap, _, err := atot.MapGA(ev, ga)
	if err != nil {
		return nil, err
	}
	out := &Heterogeneous{App: app.Name, Speeds: speeds}
	// Measure per-data-set latency in sequential mode — the quantity the
	// optimiser's critical-path model estimates.
	measure := func(m *model.Mapping) (sim.Duration, error) {
		tbl, err := gluegenGenerate(app, m, pl, nodes)
		if err != nil {
			return 0, err
		}
		res, err := sagert.Run(tbl, pl, sagert.Options{Iterations: 3, Sequential: true, NodeSpeeds: speeds})
		if err != nil {
			return 0, err
		}
		return res.AvgLatency(), nil
	}
	mappings := []*model.Mapping{gaMap, model.RoundRobin(app, nodes)}
	measured, err := runPool(0, len(mappings), func(i int) (sim.Duration, error) {
		return measure(mappings[i])
	})
	if err != nil {
		return nil, err
	}
	out.MeasuredGA, out.MeasuredRR = measured[0], measured[1]
	return out, nil
}

// Format renders the study.
func (h *Heterogeneous) Format() string {
	return fmt.Sprintf("Heterogeneous mapping study for %s (node speeds %v):\n  GA latency %v, round-robin latency %v (GA %.1f%% faster)\n",
		h.App, h.Speeds, h.MeasuredGA, h.MeasuredRR,
		100*(float64(h.MeasuredRR)-float64(h.MeasuredGA))/float64(h.MeasuredRR))
}

// ---------------------------------------------------------------------------
// Real-time input-rate study (§1: "real-time applications that require
// high-performance and high input/output bandwidth")
// ---------------------------------------------------------------------------

// RealTimeRow is one paced run.
type RealTimeRow struct {
	InputPeriod sim.Duration
	MaxOverrun  sim.Duration
	AvgLatency  sim.Duration
	Sustained   bool // the pipeline kept up (no meaningful overrun)
}

// RealTime sweeps sensor input rates around the pipeline's capability.
type RealTime struct {
	App      AppKind
	N, Nodes int
	Capacity sim.Duration // unpaced steady-state period
	Rows     []RealTimeRow
}

// RunRealTime measures the free-running period, then paces the source at
// multiples of it and reports whether the runtime sustains each rate.
func RunRealTime(kind AppKind, pl machine.Platform, n, nodes, iterations int, factors []float64) (*RealTime, error) {
	if iterations < 4 {
		iterations = 4
	}
	if len(factors) == 0 {
		factors = []float64{0.7, 1.0, 1.3, 2.0}
	}
	tbl, err := GenerateTables(kind, pl, nodes, n)
	if err != nil {
		return nil, err
	}
	free, err := sagert.Run(tbl.Tables, pl, sagert.Options{Iterations: iterations})
	if err != nil {
		return nil, err
	}
	out := &RealTime{App: kind, N: n, Nodes: nodes, Capacity: free.Period}
	// Every paced run depends on the free-running period above, but the runs
	// are independent of each other: one pooled job per input rate.
	rows, err := runPool(0, len(factors), func(i int) (RealTimeRow, error) {
		period := sim.Duration(float64(free.Period) * factors[i])
		res, err := sagert.Run(tbl.Tables, pl, sagert.Options{Iterations: iterations, InputPeriod: period})
		if err != nil {
			return RealTimeRow{}, err
		}
		return RealTimeRow{
			InputPeriod: period,
			MaxOverrun:  res.MaxOverrun,
			AvgLatency:  res.AvgLatency(),
			Sustained:   float64(res.MaxOverrun) < 0.05*float64(period),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	out.Rows = rows
	return out, nil
}

// Format renders the sweep.
func (r *RealTime) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Real-time input-rate study: %s %dx%d on %d nodes (free-running period %v)\n\n",
		r.App, r.N, r.N, r.Nodes, r.Capacity)
	fmt.Fprintf(&b, "%16s %16s %16s %10s\n", "input period", "max overrun", "avg latency", "sustained")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%16v %16v %16v %10v\n", row.InputPeriod, row.MaxOverrun, row.AvgLatency, row.Sustained)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// AToT mapping study (§1.1)
// ---------------------------------------------------------------------------

// MappingStudy compares the GA mapper against the baselines on an
// application.
type MappingStudy struct {
	App        string
	GACost     atot.Cost
	GreedyCost atot.Cost
	RoundRobin atot.Cost
	// MeasuredGA / MeasuredRR are simulated latencies of the GA and
	// round-robin mappings, closing the loop between the analytic model
	// and the runtime.
	MeasuredGA sim.Duration
	MeasuredRR sim.Duration
}

// RunMappingStudy maps an application with all three strategies, prices them
// with the AToT cost model, and executes the GA and round-robin mappings on
// the simulator.
func RunMappingStudy(app *model.App, pl machine.Platform, nodes int, ga atot.GAConfig) (*MappingStudy, error) {
	ev, err := atot.NewEvaluator(app, pl, nodes)
	if err != nil {
		return nil, err
	}
	gaMap, stats, err := atot.MapGA(ev, ga)
	if err != nil {
		return nil, err
	}
	greedy, err := atot.MapGreedy(ev)
	if err != nil {
		return nil, err
	}
	greedyCost, err := ev.Evaluate(greedy, ga.Weights)
	if err != nil {
		return nil, err
	}
	rr := model.RoundRobin(app, nodes)
	rrCost, err := ev.Evaluate(rr, ga.Weights)
	if err != nil {
		return nil, err
	}
	study := &MappingStudy{App: app.Name, GACost: stats.Best, GreedyCost: greedyCost, RoundRobin: rrCost}

	measure := func(m *model.Mapping) (sim.Duration, error) {
		out, err := gluegenGenerate(app, m, pl, nodes)
		if err != nil {
			return 0, err
		}
		res, err := sagert.Run(out, pl, sagert.Options{Iterations: 3})
		if err != nil {
			return 0, err
		}
		return res.AvgLatency(), nil
	}
	mappings := []*model.Mapping{gaMap, rr}
	measured, err := runPool(0, len(mappings), func(i int) (sim.Duration, error) {
		return measure(mappings[i])
	})
	if err != nil {
		return nil, err
	}
	study.MeasuredGA, study.MeasuredRR = measured[0], measured[1]
	return study, nil
}

// Format renders the study.
func (s *MappingStudy) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "AToT mapping study for %s\n\n", s.App)
	fmt.Fprintf(&b, "%-12s %16s %16s %16s\n", "Strategy", "max node busy", "comm cost", "critical path")
	row := func(name string, c atot.Cost) {
		fmt.Fprintf(&b, "%-12s %16v %16v %16v\n", name, c.MaxNodeBusy, c.Comm, c.CriticalPath)
	}
	row("GA", s.GACost)
	row("greedy", s.GreedyCost)
	row("round-robin", s.RoundRobin)
	fmt.Fprintf(&b, "\nsimulated latency: GA mapping %v, round-robin %v\n", s.MeasuredGA, s.MeasuredRR)
	return b.String()
}
