package experiments

import (
	"strings"
	"testing"

	"repro/internal/apps"
	"repro/internal/atot"
	"repro/internal/platforms"
)

// quickTable runs a reduced Table 1.0 grid fast enough for unit tests while
// keeping the paper's structure.
func quickTable(t *testing.T) *Table1 {
	t.Helper()
	tbl, err := RunTable1(Table1Config{
		Sizes:    []int{64, 128},
		Nodes:    []int{4, 8},
		Protocol: Quick(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return tbl
}

func TestTable1StructureAndBand(t *testing.T) {
	tbl := quickTable(t)
	if len(tbl.Rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(tbl.Rows))
	}
	for _, r := range tbl.Rows {
		if r.Hand <= 0 || r.Sage <= 0 {
			t.Fatalf("non-positive latency in %+v", r)
		}
		// The paper's central claim: generated code is slower than
		// hand-coded but comparable ("within 75%" of it in the abstract's
		// wording, 77.5-86% in the body). Allow a generous band at the
		// reduced sizes used in tests.
		if r.PctOfHand >= 100 {
			t.Fatalf("SAGE beat hand-coded in %+v", r)
		}
		if r.PctOfHand < 55 {
			t.Fatalf("SAGE below 55%% of hand-coded in %+v", r)
		}
	}
	if tbl.OverallAvg <= 0 || tbl.OverallAvg >= 100 {
		t.Fatalf("overall avg = %v", tbl.OverallAvg)
	}
}

func TestTable1PaperScalePoint(t *testing.T) {
	// One full-scale cell of Table 1.0 (1024x1024, 8 nodes) with a reduced
	// protocol: the efficiency must land in the paper's reported band.
	if testing.Short() {
		t.Skip("full-size cell in -short mode")
	}
	tbl, err := RunTable1(Table1Config{
		Sizes:    []int{1024},
		Nodes:    []int{8},
		Protocol: Protocol{Repetitions: 1, Iterations: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tbl.Rows {
		if r.PctOfHand < 70 || r.PctOfHand > 95 {
			t.Fatalf("%s at 1024/8: %.1f%% of hand-coded, outside the paper band [70, 95]", r.App, r.PctOfHand)
		}
	}
}

func TestTable1Format(t *testing.T) {
	tbl := quickTable(t)
	s := tbl.Format()
	for _, want := range []string{"Table 1.0", "2D FFT", "Corner Turn", "64 x 64", "% of Hand", "Overall"} {
		if !strings.Contains(s, want) {
			t.Fatalf("format missing %q:\n%s", want, s)
		}
	}
}

func TestTwoNodeAnomaly(t *testing.T) {
	res, err := RunTwoNode(platforms.CSPI(), 128, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if !res.WorstIsTwoNodes() {
		t.Fatalf("two-node configuration is not the worst: %+v", res.Rows)
	}
	if !strings.Contains(res.Format(), "two-node") {
		t.Fatal("format missing title")
	}
}

func TestAggregateOptimizedImproves(t *testing.T) {
	agg, err := RunAggregate(Table1Config{
		Sizes:    []int{128},
		Nodes:    []int{4},
		Protocol: Quick(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Optimized.OverallAvg <= agg.Baseline.OverallAvg {
		t.Fatalf("optimized buffers (%v%%) did not improve on baseline (%v%%)",
			agg.Optimized.OverallAvg, agg.Baseline.OverallAvg)
	}
	if !strings.Contains(agg.Format(), "optimized buffers") {
		t.Fatal("format missing optimized row")
	}
}

func TestCrossVendorShape(t *testing.T) {
	cv, err := RunCrossVendor(128, []int{4, 8}, Quick())
	if err != nil {
		t.Fatal(err)
	}
	// 4 platforms x 2 apps x 2 node counts.
	if len(cv.Rows) != 16 {
		t.Fatalf("rows = %d", len(cv.Rows))
	}
	// The corner turn is fabric-bound: the crossbar (Mercury) must beat
	// the weakest fabric (SIGI).
	var mercury, sigi float64
	for _, r := range cv.Rows {
		if r.App == AppCornerTurn && r.Nodes == 8 {
			switch r.Platform {
			case "Mercury":
				mercury = float64(r.Latency)
			case "SIGI":
				sigi = float64(r.Latency)
			}
		}
	}
	if mercury == 0 || sigi == 0 || mercury >= sigi {
		t.Fatalf("vendor ranking wrong: mercury=%v sigi=%v", mercury, sigi)
	}
	if w := cv.Winner(AppCornerTurn, 8); w != "Mercury" {
		t.Fatalf("corner-turn winner = %s, want Mercury", w)
	}
	s := cv.Format()
	for _, want := range []string{"Mercury", "CSPI", "SKY", "SIGI", "8 nodes"} {
		if !strings.Contains(s, want) {
			t.Fatalf("format missing %q", want)
		}
	}
}

func TestPortabilityAllPlatforms(t *testing.T) {
	p, err := RunPortability(AppFFT2D, 64, 4, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rows) != 4 {
		t.Fatalf("rows = %d", len(p.Rows))
	}
	if !p.AllVerified() {
		t.Fatalf("output differed across platforms: %+v", p.Rows)
	}
	if !strings.Contains(p.Format(), "regenerated per platform") {
		t.Fatal("format missing title")
	}
}

func TestGenStudy(t *testing.T) {
	s, err := RunGenStudy(AppCornerTurn, platforms.CSPI(), 256, 8)
	if err != nil {
		t.Fatal(err)
	}
	if s.Functions != 4 || s.Buffers != 3 {
		t.Fatalf("study = %+v", s)
	}
	// 8 scatter + 64 all-to-all + 8 gather.
	if s.Transfers != 80 {
		t.Fatalf("transfers = %d, want 80", s.Transfers)
	}
	if !s.Verified || s.TableLines == 0 || s.GlueLines == 0 {
		t.Fatalf("study = %+v", s)
	}
	if !strings.Contains(s.Format(), "Figure 1.0") {
		t.Fatal("format missing title")
	}
}

func TestMappingStudy(t *testing.T) {
	app, err := apps.STAP(64, 3)
	if err != nil {
		t.Fatal(err)
	}
	study, err := RunMappingStudy(app, platforms.CSPI(), 8, atot.GAConfig{Population: 24, Generations: 25, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if study.GACost.Total > study.RoundRobin.Total {
		t.Fatalf("GA (%v) worse than round-robin (%v)", study.GACost.Total, study.RoundRobin.Total)
	}
	if study.MeasuredGA <= 0 || study.MeasuredRR <= 0 {
		t.Fatalf("measured latencies %v %v", study.MeasuredGA, study.MeasuredRR)
	}
	if !strings.Contains(study.Format(), "round-robin") {
		t.Fatal("format missing rows")
	}
}

func TestPipelineStudy(t *testing.T) {
	p, err := RunPipeline(AppFFT2D, platforms.CSPI(), 128, 4, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Pipelining must improve throughput over the sequential runtime.
	if p.SagePipelinePeriod >= p.SageSequential {
		t.Fatalf("pipelined period %v not better than sequential latency %v", p.SagePipelinePeriod, p.SageSequential)
	}
	// Sequential SAGE is slower than hand-coded (the Table 1.0 relation).
	if p.SageSequential <= p.Hand {
		t.Fatalf("sequential SAGE (%v) not slower than hand (%v)", p.SageSequential, p.Hand)
	}
	if !strings.Contains(p.Format(), "Pipelining ablation") {
		t.Fatal("format missing title")
	}
}

func TestScalingStudy(t *testing.T) {
	s, err := RunScaling(AppFFT2D, platforms.CSPI(), 256, []int{1, 2, 4, 8}, Quick())
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 4 {
		t.Fatalf("rows = %d", len(s.Rows))
	}
	// The compute-bound FFT must keep speeding up with node count, for
	// both versions.
	for i := 1; i < len(s.Rows); i++ {
		if s.Rows[i].HandSpeedup <= s.Rows[i-1].HandSpeedup {
			t.Fatalf("hand speedup not monotone: %+v", s.Rows)
		}
		if s.Rows[i].SageSpeedup <= s.Rows[i-1].SageSpeedup {
			t.Fatalf("sage speedup not monotone: %+v", s.Rows)
		}
	}
	// Speedups are sublinear (communication and the serial source/sink).
	last := s.Rows[len(s.Rows)-1]
	if last.HandSpeedup >= float64(last.Nodes) {
		t.Fatalf("superlinear hand speedup %v at %d nodes", last.HandSpeedup, last.Nodes)
	}
	if !strings.Contains(s.Format(), "Scaling study") {
		t.Fatal("format missing title")
	}
}

func TestEstimateAccuracy(t *testing.T) {
	app, err := apps.FFT2D(128, 4)
	if err != nil {
		t.Fatal(err)
	}
	ea, err := RunEstimateAccuracy(app, platforms.CSPI(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(ea.Points) < 3 {
		t.Fatalf("points = %d", len(ea.Points))
	}
	c, tot := ea.RankAgreement()
	if tot == 0 {
		t.Fatal("no comparable pairs")
	}
	// The analytic model must order mappings mostly like the simulator.
	if float64(c) < 0.7*float64(tot) {
		t.Fatalf("rank agreement %d/%d too low:\n%s", c, tot, ea.Format())
	}
	if !strings.Contains(ea.Format(), "rank agreement") {
		t.Fatal("format missing summary")
	}
}

func TestHeterogeneousStudy(t *testing.T) {
	app, err := apps.STAP(128, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Two fast nodes, four baseline, two slow.
	speeds := []float64{2, 2, 1, 1, 1, 1, 0.5, 0.5}
	h, err := RunHeterogeneous(app, platforms.CSPI(), speeds,
		atot.GAConfig{Population: 32, Generations: 40, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if h.MeasuredGA <= 0 || h.MeasuredRR <= 0 {
		t.Fatalf("study = %+v", h)
	}
	// The speed-aware GA must beat naive round-robin placement on a
	// heterogeneous machine.
	if h.MeasuredGA >= h.MeasuredRR {
		t.Fatalf("GA (%v) not faster than round-robin (%v) on heterogeneous nodes", h.MeasuredGA, h.MeasuredRR)
	}
	if !strings.Contains(h.Format(), "Heterogeneous") {
		t.Fatal("format missing title")
	}
}

func TestRealTimeStudy(t *testing.T) {
	rt, err := RunRealTime(AppCornerTurn, platforms.CSPI(), 128, 4, 6, []float64{0.5, 1.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.Rows) != 2 {
		t.Fatalf("rows = %d", len(rt.Rows))
	}
	over, under := rt.Rows[0], rt.Rows[1]
	// Pacing at half the achievable period overruns; 1.5x is sustained.
	if over.Sustained {
		t.Fatalf("overdriven input reported sustained: %+v", over)
	}
	if !under.Sustained {
		t.Fatalf("slack input not sustained: %+v", under)
	}
	if over.MaxOverrun <= under.MaxOverrun {
		t.Fatalf("overrun ordering wrong: %v vs %v", over.MaxOverrun, under.MaxOverrun)
	}
	if !strings.Contains(rt.Format(), "Real-time") {
		t.Fatal("format missing title")
	}
}

func TestProtocolDefaults(t *testing.T) {
	p := Protocol{}.withDefaults()
	if p.Repetitions != 1 || p.Iterations != 1 {
		t.Fatalf("defaults = %+v", p)
	}
	paper := Paper()
	if paper.Repetitions != 10 || paper.Iterations != 100 {
		t.Fatalf("paper protocol = %+v", paper)
	}
}

func TestBuildAppUnknownKind(t *testing.T) {
	if _, err := buildApp("bogus", 64, 4); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if _, _, err := runHand("bogus", platforms.CSPI(), 4, 64, Quick()); err == nil {
		t.Fatal("unknown kind accepted by runHand")
	}
}
