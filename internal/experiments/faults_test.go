package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// faultTestConfig is the fixed-seed sweep the determinism and golden tests
// share: three rates (fault-free, moderate, heavy), small enough for the
// race detector.
func faultTestConfig(parallelism int, tr *trace.Trace) FaultSweepConfig {
	return FaultSweepConfig{
		N:     64,
		Nodes: 4,
		Rates: []float64{0, 0.1, 0.3},
		Seed:  DefaultFaultSeed,
		Protocol: Protocol{
			Repetitions: 1,
			Iterations:  3,
			Parallelism: parallelism,
			Trace:       tr,
		},
	}
}

// TestFaultSweepShape checks the sweep's basic physics: every run terminates,
// the fault-free row normalises to 1.0, and injected drops never make either
// implementation faster.
func TestFaultSweepShape(t *testing.T) {
	s, err := RunFaultSweep(faultTestConfig(0, nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(s.Rows))
	}
	r0 := s.Rows[0]
	if r0.Rate != 0 || r0.HandSlow != 1 || r0.SageSlow != 1 {
		t.Fatalf("fault-free row not normalised: %+v", r0)
	}
	for _, r := range s.Rows {
		if r.Hand <= 0 || r.Sage <= 0 {
			t.Fatalf("rate %v: non-positive latency: %+v", r.Rate, r)
		}
		if r.HandSlow < 1 || r.SageSlow < 1 {
			t.Fatalf("rate %v: faults made a run faster than fault-free: %+v", r.Rate, r)
		}
	}
	if s.Rows[2].HandSlow <= s.Rows[0].HandSlow {
		t.Fatalf("heavy drop rate shows no hand-coded slowdown: %+v", s.Rows)
	}
}

// TestFaultSweepDeterminism is the subsystem's determinism regression test:
// the fixed-seed sweep must produce byte-identical output on one worker and
// on eight, and tracing must not perturb a single value.
func TestFaultSweepDeterminism(t *testing.T) {
	ref, err := RunFaultSweep(faultTestConfig(1, nil))
	if err != nil {
		t.Fatal(err)
	}
	for _, parallelism := range []int{1, 8} {
		for _, traced := range []bool{false, true} {
			var tr *trace.Trace
			if traced {
				tr = trace.NewTrace()
			}
			got, err := RunFaultSweep(faultTestConfig(parallelism, tr))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ref, got) {
				t.Fatalf("parallelism=%d traced=%v: sweep differs from sequential untraced reference:\nref: %+v\ngot: %+v",
					parallelism, traced, ref, got)
			}
			if got.Format() != ref.Format() {
				t.Fatalf("parallelism=%d traced=%v: formatted table differs", parallelism, traced)
			}
		}
	}
}

// TestFaultSweepGolden pins the sweep's formatted output to a checked-in
// golden file, so any change to the fault model's timing is a conscious,
// reviewed one. Regenerate with: go test ./internal/experiments -run Golden -update
var update = os.Getenv("UPDATE_GOLDEN") != ""

func TestFaultSweepGolden(t *testing.T) {
	s, err := RunFaultSweep(faultTestConfig(0, nil))
	if err != nil {
		t.Fatal(err)
	}
	got := []byte(s.Format())
	golden := filepath.Join("testdata", "faultsweep.golden")
	if update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("fault sweep output drifted from %s (set UPDATE_GOLDEN=1 to regenerate):\n--- want ---\n%s\n--- got ---\n%s",
			golden, want, got)
	}
}

// TestFaultSweepTrace checks the end-to-end trace claim: a traced sweep
// exports a valid Chrome trace containing fault-layer events, identically at
// any parallelism.
func TestFaultSweepTrace(t *testing.T) {
	export := func(parallelism int) []byte {
		tr := trace.NewTrace()
		if _, err := RunFaultSweep(faultTestConfig(parallelism, tr)); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := tr.WriteChrome(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	seq := export(1)
	par := export(8)
	if !bytes.Equal(seq, par) {
		t.Fatalf("fault-sweep trace differs between Parallelism=1 (%d bytes) and Parallelism=8 (%d bytes)",
			len(seq), len(par))
	}
	stats, err := trace.ValidateChrome(seq)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Faults == 0 {
		t.Fatal("traced fault sweep exported no fault-layer events")
	}
	if stats.Cats[string(trace.LayerFault)] == 0 {
		t.Fatalf("no fault category in export (cats: %v)", stats.Cats)
	}
}
