package experiments

import (
	"runtime"
	"sync"

	"repro/internal/trace"
)

// runPool is the parallel experiment engine: it executes n independent jobs
// on a bounded worker pool and returns their results in input order.
//
// Every job must be self-contained — each simulation run owns a fresh
// sim.Kernel, machine and RNG seed, so host-level concurrency cannot change
// any virtual-time result. Because results are written to slot i regardless
// of completion order, pooled output is byte-identical to sequential output:
// parallelism only changes wall-clock time, never a reported number.
//
// parallelism <= 0 selects runtime.GOMAXPROCS(0) workers; 1 runs the jobs
// inline on the calling goroutine (the sequential reference the determinism
// tests compare against). When several jobs fail, the error of the lowest
// input index is returned — the same error a sequential loop would hit
// first.
func runPool[T any](parallelism, n int, job func(i int) (T, error)) ([]T, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > n {
		parallelism = n
	}
	results := make([]T, n)
	if parallelism <= 1 {
		for i := 0; i < n; i++ {
			r, err := job(i)
			if err != nil {
				return nil, err
			}
			results[i] = r
		}
		return results, nil
	}
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallelism; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = job(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		jobs <- i
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// mergeTrace folds the per-run collectors produced by pooled jobs into the
// protocol's Trace in input (sweep) order, after the pool has drained. Each
// collector was filled by exactly one kernel's goroutine, so this single
// post-pool pass is the only cross-run touch point — no locking, and the
// merged trace is identical at any parallelism. No-op when tracing is off.
func mergeTrace[T any](t *trace.Trace, results []T, cols func(T) []*trace.Collector) {
	if t == nil {
		return
	}
	for _, r := range results {
		for _, c := range cols(r) {
			t.Add(c)
		}
	}
}
