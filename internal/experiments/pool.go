package experiments

import (
	"repro/internal/pool"
	"repro/internal/trace"
)

// runPool is the parallel experiment engine — pool.Run under its historical
// local name: n independent jobs on a bounded worker pool, results in input
// order, lowest-index error wins, first failure stops further dispatch.
func runPool[T any](parallelism, n int, job func(i int) (T, error)) ([]T, error) {
	return pool.Run(parallelism, n, job)
}

// RunPool exposes the experiment worker pool to other packages — the serve
// daemon drives each request's repetition batch through it. Semantics are
// exactly pool.Run's: results in input order, the lowest-index error wins,
// and the first failure stops further dispatch (which is how a canceled
// repetition aborts the rest of a request's batch).
func RunPool[T any](parallelism, n int, job func(i int) (T, error)) ([]T, error) {
	return pool.Run(parallelism, n, job)
}

// mergeTrace folds the per-run collectors produced by pooled jobs into the
// protocol's Trace in input (sweep) order, after the pool has drained. Each
// collector was filled by exactly one kernel's goroutine, so this single
// post-pool pass is the only cross-run touch point — no locking, and the
// merged trace is identical at any parallelism. No-op when tracing is off.
func mergeTrace[T any](t *trace.Trace, results []T, cols func(T) []*trace.Collector) {
	if t == nil {
		return
	}
	for _, r := range results {
		for _, c := range cols(r) {
			t.Add(c)
		}
	}
}
