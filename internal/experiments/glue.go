package experiments

import (
	"repro/internal/gluegen"
	"repro/internal/machine"
	"repro/internal/model"
)

// gluegenGenerate wraps gluegen.Generate for an explicit mapping and returns
// the verified tables.
func gluegenGenerate(app *model.App, m *model.Mapping, pl machine.Platform, nodes int) (*gluegen.Tables, error) {
	out, err := gluegen.Generate(gluegen.Input{App: app, Mapping: m, Platform: pl, NumNodes: nodes})
	if err != nil {
		return nil, err
	}
	return out.Tables, nil
}
