// Package experiments reproduces the paper's evaluation (§3) end to end:
// Table 1.0 (hand-coded vs SAGE auto-generated code for the Parallel 2D FFT
// and Distributed Corner Turn), the §3.4 two-node corner-turn anomaly, the
// §4 aggregate efficiency claim (including the announced future-work
// optimisation), the cross-vendor comparison the paper takes from MITRE, the
// portability claim (one model, regenerated per platform), and a generation
// study for Figure 1.0. Each experiment returns a structured result with a
// Format method that prints rows shaped like the paper's tables.
//
// Measurement protocol (§3.3): each configuration is "executed ten times
// where each execution consists of a 100 iterations" and the reported value
// averages all of them. The simulator is deterministic, so the repetitions
// are literal re-executions of identical virtual work; iterations after the
// first move no samples but charge identical virtual time (see
// internal/handcoded and internal/sagert). Period and latency follow the
// paper's definitions: period is the time between completed data sets,
// latency is source-to-sink time for one data set.
//
// Sweeps execute their independent simulation runs on a bounded worker pool
// (Protocol.Parallelism, default GOMAXPROCS) and aggregate results in input
// order. Each run owns a private sim.Kernel, machine and RNG seed, so
// parallel output is byte-identical to sequential output; only the host
// wall-clock changes.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/fault"
	"repro/internal/gluegen"
	"repro/internal/handcoded"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/twin"
)

// Protocol fixes the measurement parameters of §3.3.
type Protocol struct {
	Repetitions int // paper: 10
	Iterations  int // paper: 100 per repetition
	// Parallelism bounds the worker pool that fans independent simulation
	// runs across host cores (each run owns its own sim.Kernel and
	// machine). 0 selects runtime.GOMAXPROCS; 1 forces sequential
	// execution. Results are aggregated in input order, so every value of
	// Parallelism produces byte-identical output — virtual time never
	// depends on host concurrency.
	Parallelism int
	// Trace, when non-nil, collects structured traces of every simulation
	// run the experiment performs: each repetition of each sweep cell gets
	// its own trace.Collector (one collector per sim.Kernel, so pooled runs
	// never share mutable state), and the collectors are merged into Trace
	// in sweep order after the worker pool drains. Tracing therefore never
	// perturbs results and produces identical output at any Parallelism.
	Trace *trace.Trace
	// Faults, when non-nil and non-empty, applies a deterministic fault plan
	// to every simulation run of the experiment: the shared immutable plan
	// is instantiated as a fresh injector per run (per kernel), so pooled
	// runs share no mutable state and results stay byte-identical at any
	// Parallelism. Hand-coded baselines get the MPI retry protocol; SAGE
	// runs additionally get the resilient runtime mode.
	Faults *fault.Plan
	// Shards requests conservative sharded execution inside each SAGE
	// simulation run (sagert.Options.Shards): one run's event processing
	// spreads across up to Shards cores, byte-identical to the sequential
	// kernel. Orthogonal to Parallelism, which fans out whole runs; Shards
	// helps when a single huge run dominates the wall clock. Runs that
	// cannot shard soundly (shared-fabric platforms, Sequential-mode
	// comparisons) silently ignore it.
	Shards int
}

// Paper is the full §3.3 protocol.
func Paper() Protocol { return Protocol{Repetitions: 10, Iterations: 100} }

// Quick is a reduced protocol for unit tests and smoke runs.
func Quick() Protocol { return Protocol{Repetitions: 2, Iterations: 5} }

func (p Protocol) withDefaults() Protocol {
	if p.Repetitions < 1 {
		p.Repetitions = 1
	}
	if p.Iterations < 1 {
		p.Iterations = 1
	}
	return p
}

// AppKind selects a benchmark application.
type AppKind string

const (
	AppFFT2D      AppKind = "2D FFT"
	AppCornerTurn AppKind = "Corner Turn"
)

// BuildApp constructs the application model for a kind; exported so the
// real-execution driver (sage-exec) can evaluate the same model with the
// sequential oracle it diffs the generated program against.
func BuildApp(kind AppKind, n, threads int) (*model.App, error) {
	return buildApp(kind, n, threads)
}

// buildApp constructs the application model for a kind.
func buildApp(kind AppKind, n, threads int) (*model.App, error) {
	switch kind {
	case AppFFT2D:
		return apps.FFT2D(n, threads)
	case AppCornerTurn:
		return apps.CornerTurn(n, threads)
	default:
		return nil, fmt.Errorf("experiments: unknown app %q", kind)
	}
}

// runHand executes the hand-coded baseline under the protocol and returns
// the average per-data-set time. The hand-coded benchmarks process data
// sets in a sequential loop, so their period equals their latency.
func runHand(kind AppKind, pl machine.Platform, nodes, n int, proto Protocol) (sim.Duration, []*trace.Collector, error) {
	var total sim.Duration
	var cols []*trace.Collector
	for rep := 0; rep < proto.Repetitions; rep++ {
		cfg := handcoded.Config{Platform: pl, Nodes: nodes, N: n, Iterations: proto.Iterations, Seed: 1,
			Faults: proto.Faults}
		if proto.Trace != nil {
			cfg.Trace = trace.New(fmt.Sprintf("hand %s %s n=%d nodes=%d rep%d", kind, pl.Name, n, nodes, rep))
			cols = append(cols, cfg.Trace)
		}
		var res *handcoded.Result
		var err error
		switch kind {
		case AppFFT2D:
			res, err = handcoded.FFT2D(cfg)
		case AppCornerTurn:
			res, err = handcoded.CornerTurn(cfg)
		default:
			return 0, nil, fmt.Errorf("experiments: unknown app %q", kind)
		}
		if err != nil {
			return 0, nil, err
		}
		total += res.AvgLatency()
	}
	return total / sim.Duration(proto.Repetitions), cols, nil
}

// GenerateTables builds the model, maps it (one worker thread per node,
// source and sink on node 0 — the deployment of §3.3's manual mapping
// step), and runs the Alter glue generator.
func GenerateTables(kind AppKind, pl machine.Platform, nodes, n int) (*gluegen.Output, error) {
	app, err := buildApp(kind, n, nodes)
	if err != nil {
		return nil, err
	}
	mapping, err := model.SpreadParallel(app, nodes)
	if err != nil {
		return nil, err
	}
	return gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: nodes})
}

// GenerateTablesWide builds tables for topologies wider than one function:
// the app gets an explicit worker-thread count (the runtime caps a single
// function at 128 threads) and the functions are staggered across the
// machine (model.StaggerParallel), so a 1024-node platform is genuinely
// populated instead of piling every stage onto nodes 0..threads-1.
func GenerateTablesWide(kind AppKind, pl machine.Platform, nodes, threads, n int) (*gluegen.Output, error) {
	app, err := buildApp(kind, n, threads)
	if err != nil {
		return nil, err
	}
	mapping, err := model.StaggerParallel(app, nodes)
	if err != nil {
		return nil, err
	}
	return gluegen.Generate(gluegen.Input{App: app, Mapping: mapping, Platform: pl, NumNodes: nodes})
}

// runSage generates glue code and executes it under the protocol, returning
// the average per-data-set time. For the hand-coded comparison the runtime
// runs in Sequential mode (one data set at a time, like the hand-coded
// measurement loop); the runtime's pipelined throughput is studied
// separately by RunPipeline.
func runSage(kind AppKind, pl machine.Platform, nodes, n int, proto Protocol, opts sagert.Options) (sim.Duration, []*trace.Collector, error) {
	out, err := GenerateTables(kind, pl, nodes, n)
	if err != nil {
		return 0, nil, err
	}
	var total sim.Duration
	var cols []*trace.Collector
	for rep := 0; rep < proto.Repetitions; rep++ {
		o := opts
		o.Iterations = proto.Iterations
		o.Sequential = true
		o.Faults = proto.Faults
		if proto.Faults.HasStalls() {
			// Stall plans engage the degraded-mode transfer re-sequencing.
			o.Resilience.Degraded = true
		}
		if proto.Trace != nil {
			o.Collector = trace.New(fmt.Sprintf("sage %s %s n=%d nodes=%d rep%d", kind, pl.Name, n, nodes, rep))
			cols = append(cols, o.Collector)
		}
		applyShards(proto, out.Tables, pl, &o)
		res, err := sagert.Run(out.Tables, pl, o)
		if err != nil {
			return 0, nil, err
		}
		total += res.AvgLatency()
	}
	return total / sim.Duration(proto.Repetitions), cols, nil
}

// applyShards copies the protocol's shard request into one run's options,
// seeding the partitioner with the analytical twin's per-node busy forecast
// (twin.ShardWeights) so the shard cuts land between the busy nodes. The
// weights only steer the partition — any partition is byte-identical — so a
// twin error just falls back to uniform weights.
func applyShards(proto Protocol, tables *gluegen.Tables, pl machine.Platform, o *sagert.Options) {
	if proto.Shards <= 1 {
		return
	}
	o.Shards = proto.Shards
	if w, err := twin.ShardWeights(tables, pl, twin.Options{
		Iterations: o.Iterations, DispatchOverhead: o.DispatchOverhead,
		BufferSlots: o.BufferSlots, Sequential: o.Sequential,
		OptimizedBuffers: o.OptimizedBuffers, NodeSpeeds: o.NodeSpeeds,
	}); err == nil {
		o.ShardWeights = w
	}
}

// Row is one line of a hand-vs-SAGE comparison table.
type Row struct {
	App       AppKind
	N         int
	Nodes     int
	Hand      sim.Duration
	Sage      sim.Duration
	PctOfHand float64 // 100 * Hand / Sage, the paper's "% of Hand Coded"
}

// Table1 is the reproduction of Table 1.0.
type Table1 struct {
	Platform string
	Protocol Protocol
	Rows     []Row
	// Averages per application and overall, in "% of hand coded".
	FFTAvg, CTAvg, OverallAvg float64
}

// Table1Config parameterises the grid; zero values select the paper's.
type Table1Config struct {
	Platform machine.Platform
	Sizes    []int // paper: 256, 512, 1024
	Nodes    []int // paper: 4, 8
	Protocol Protocol
	Options  sagert.Options
}

func (c Table1Config) withDefaults() Table1Config {
	if c.Platform.Name == "" {
		c.Platform = platforms.CSPI()
	}
	if len(c.Sizes) == 0 {
		c.Sizes = []int{256, 512, 1024}
	}
	if len(c.Nodes) == 0 {
		c.Nodes = []int{4, 8}
	}
	c.Protocol = c.Protocol.withDefaults()
	return c
}

// RunTable1 executes the Table 1.0 grid. The grid's cells are independent
// simulations, so they fan out across the Protocol.Parallelism worker pool;
// rows and averages are aggregated in grid order regardless of which cell
// finishes first.
func RunTable1(cfg Table1Config) (*Table1, error) {
	c := cfg.withDefaults()
	out := &Table1{Platform: c.Platform.Name, Protocol: c.Protocol}
	type cell struct {
		kind     AppKind
		n, nodes int
	}
	var cells []cell
	for _, kind := range []AppKind{AppFFT2D, AppCornerTurn} {
		for _, n := range c.Sizes {
			for _, nodes := range c.Nodes {
				cells = append(cells, cell{kind, n, nodes})
			}
		}
	}
	type cellOut struct {
		row  Row
		cols []*trace.Collector
	}
	outs, err := runPool(c.Protocol.Parallelism, len(cells), func(i int) (cellOut, error) {
		cl := cells[i]
		hand, hcols, err := runHand(cl.kind, c.Platform, cl.nodes, cl.n, c.Protocol)
		if err != nil {
			return cellOut{}, fmt.Errorf("experiments: %s n=%d nodes=%d hand: %w", cl.kind, cl.n, cl.nodes, err)
		}
		sage, scols, err := runSage(cl.kind, c.Platform, cl.nodes, cl.n, c.Protocol, c.Options)
		if err != nil {
			return cellOut{}, fmt.Errorf("experiments: %s n=%d nodes=%d sage: %w", cl.kind, cl.n, cl.nodes, err)
		}
		return cellOut{
			row: Row{App: cl.kind, N: cl.n, Nodes: cl.nodes, Hand: hand, Sage: sage,
				PctOfHand: 100 * float64(hand) / float64(sage)},
			cols: append(hcols, scols...),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	mergeTrace(c.Protocol.Trace, outs, func(co cellOut) []*trace.Collector { return co.cols })
	// The Trace pointer is an output channel, not a protocol parameter:
	// keep it out of the result so traced and untraced tables compare equal.
	out.Protocol.Trace = nil
	var fftSum, ctSum float64
	var fftN, ctN int
	for _, co := range outs {
		r := co.row
		out.Rows = append(out.Rows, r)
		if r.App == AppFFT2D {
			fftSum += r.PctOfHand
			fftN++
		} else {
			ctSum += r.PctOfHand
			ctN++
		}
	}
	if fftN > 0 {
		out.FFTAvg = fftSum / float64(fftN)
	}
	if ctN > 0 {
		out.CTAvg = ctSum / float64(ctN)
	}
	if fftN+ctN > 0 {
		out.OverallAvg = (fftSum + ctSum) / float64(fftN+ctN)
	}
	return out, nil
}

// Format renders the table in the shape of the paper's Table 1.0.
func (t *Table1) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 1.0 — Comparison of hand-coded and auto-generated code for %s\n", t.Platform)
	fmt.Fprintf(&b, "(protocol: %d executions x %d iterations, averaged)\n\n", t.Protocol.Repetitions, t.Protocol.Iterations)
	fmt.Fprintf(&b, "%-12s %-11s %6s  %14s %14s %14s\n", "Application", "Array Size", "Nodes", "Hand Coded", "SAGE AutoGen", "% of Hand")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-12s %-11s %6d  %14v %14v %13.1f%%\n",
			r.App, fmt.Sprintf("%d x %d", r.N, r.N), r.Nodes, r.Hand, r.Sage, r.PctOfHand)
	}
	fmt.Fprintf(&b, "\nAverages: 2D FFT %.1f%%   Corner Turn %.1f%%   Overall %.1f%% of hand-coded\n",
		t.FFTAvg, t.CTAvg, t.OverallAvg)
	return b.String()
}
