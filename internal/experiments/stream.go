package experiments

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/stream"
	"repro/internal/trace"
)

// StreamCompareConfig parameterises the remap-vs-static streaming
// experiment. The scenario must enable remapping; the static baseline cell
// is derived from it with Scenario.Static.
type StreamCompareConfig struct {
	Scenario *stream.Scenario
	// Parallelism and Trace follow the Protocol conventions: the two cells
	// fan out across the pool, collectors merge in cell order.
	Parallelism int
	Trace       *trace.Trace
}

// StreamCompare holds both cells of the experiment. Reports are pure
// virtual-time artifacts, so the struct compares deep-equal at any
// Parallelism and with tracing on or off.
type StreamCompare struct {
	Scenario *stream.Scenario
	Static   *stream.Report
	Remap    *stream.Report
}

// RunStreamCompare runs the committed fault scenario twice — once with the
// remap controller disabled and once enabled — and returns both reports.
// This is the experiment behind the subsystem's headline claim: mid-run
// remapping strictly reduces late and shed frames under recurring faults.
func RunStreamCompare(cfg StreamCompareConfig) (*StreamCompare, error) {
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("experiments: stream compare: nil scenario")
	}
	if cfg.Scenario.Remap == nil {
		return nil, fmt.Errorf("experiments: stream compare: scenario has no remap policy (nothing to compare)")
	}
	cells := []*stream.Scenario{cfg.Scenario.Static(), cfg.Scenario}
	type cellOut struct {
		rep *stream.Report
		col *trace.Collector
	}
	outs, err := runPool(cfg.Parallelism, len(cells), func(i int) (cellOut, error) {
		c, err := cells[i].Build()
		if err != nil {
			return cellOut{}, fmt.Errorf("experiments: stream compare: %w", err)
		}
		var col *trace.Collector
		if cfg.Trace != nil {
			kind := "static"
			if i == 1 {
				kind = "remap"
			}
			col = trace.New(fmt.Sprintf("stream %s %s", cells[i].App, kind))
		}
		c.Collector = col
		res, err := stream.Run(c)
		if err != nil {
			return cellOut{}, fmt.Errorf("experiments: stream compare: %w", err)
		}
		rep := stream.BuildReport(c.Classes, c.Seed, res)
		if err := rep.Validate(); err != nil {
			return cellOut{}, fmt.Errorf("experiments: stream compare: %w", err)
		}
		return cellOut{rep: rep, col: col}, nil
	})
	if err != nil {
		return nil, err
	}
	mergeTrace(cfg.Trace, outs, func(co cellOut) []*trace.Collector {
		if co.col == nil {
			return nil
		}
		return []*trace.Collector{co.col}
	})
	return &StreamCompare{Scenario: cfg.Scenario, Static: outs[0].rep, Remap: outs[1].rep}, nil
}

// Improved reports whether the remapped run beat the static baseline on the
// late+shed count — the acceptance criterion CI's remap-golden check gates.
func (s *StreamCompare) Improved() bool {
	return s.Remap.Late+s.Remap.Shed < s.Static.Late+s.Static.Shed
}

// Format renders the comparison as a two-row table plus the remap events.
func (s *StreamCompare) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Stream remap comparison — %s, seed %d, %d frames offered\n\n",
		s.Scenario.App, s.Static.Seed, s.Static.Offered)
	fmt.Fprintf(&b, "%-8s %6s %6s %6s %6s %8s %12s %10s\n",
		"mapping", "compl", "late", "shed", "remaps", "jain", "stall", "fps")
	for _, row := range []struct {
		name string
		rep  *stream.Report
	}{{"static", s.Static}, {"remap", s.Remap}} {
		fmt.Fprintf(&b, "%-8s %6d %6d %6d %6d %8.4f %12v %10.1f\n",
			row.name, row.rep.Completed, row.rep.Late, row.rep.Shed, len(row.rep.Remaps),
			row.rep.Jain, time.Duration(row.rep.CreditStallNs), row.rep.ThroughputFPS)
	}
	for i := range s.Remap.Remaps {
		ev := &s.Remap.Remaps[i]
		fmt.Fprintf(&b, "\nremap %d: node %d degraded at %v; %d threads migrated, admission stalled %v\n",
			i, ev.Trigger, time.Duration(ev.AtNs), ev.Migrated, time.Duration(ev.StallNs))
	}
	verdict := "remapping did NOT improve late+shed"
	if s.Improved() {
		verdict = fmt.Sprintf("remapping cut late+shed from %d to %d",
			s.Static.Late+s.Static.Shed, s.Remap.Late+s.Remap.Shed)
	}
	fmt.Fprintf(&b, "\n%s\n", verdict)
	return b.String()
}
