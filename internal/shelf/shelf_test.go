package shelf

import (
	"strings"
	"testing"

	"repro/internal/funclib"
	"repro/internal/gluegen"
	"repro/internal/isspl"
	"repro/internal/model"
	"repro/internal/platforms"
	"repro/internal/sagert"
)

func TestBuiltinCatalogue(t *testing.T) {
	s := Builtin()
	want := []string{"corner-turn-stage", "detect-chain", "fft2d-stage"}
	got := s.Names()
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
	for _, n := range want {
		doc, err := s.Doc(n)
		if err != nil || doc == "" {
			t.Fatalf("doc for %s: %q %v", n, doc, err)
		}
	}
	if _, err := s.Doc("warp"); err == nil {
		t.Fatal("unknown doc accepted")
	}
}

func TestRegisterErrors(t *testing.T) {
	s := New()
	if err := s.Register(Entry{}); err == nil {
		t.Fatal("empty entry accepted")
	}
	e := Entry{Name: "x", Builder: func(app *model.App, name string, p Params) (*model.Function, error) { return nil, nil }}
	if err := s.Register(e); err != nil {
		t.Fatal(err)
	}
	if err := s.Register(e); err == nil {
		t.Fatal("duplicate accepted")
	}
}

func TestParamsHelpers(t *testing.T) {
	p := Params{"n": 128, "w": "hann"}
	if p.Int("n", 0) != 128 || p.Int("missing", 7) != 7 {
		t.Fatal("Int helper")
	}
	if p.String("w", "") != "hann" || p.String("missing", "d") != "d" {
		t.Fatal("String helper")
	}
}

// TestShelfBlocksRunEndToEnd assembles an application purely from shelf
// composites, flattens it, generates glue and executes it — proving the
// hierarchy path works through the whole toolchain.
func TestShelfBlocksRunEndToEnd(t *testing.T) {
	const n, threads, nodes = 32, 4, 4
	s := Builtin()
	app := model.NewApp("shelfapp")
	mt, err := app.AddType(&model.DataType{Name: "cpx32x32", Rows: n, Cols: n, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 13}})
	src.AddOutput("out", mt, model.ByRows)

	if _, err := s.Instantiate(app, "fft2d-stage", "xform", Params{"n": n, "threads": threads}); err != nil {
		t.Fatal(err)
	}
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.ByRows)
	if _, err := app.Connect("src", "out", "xform", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Connect("xform", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}

	flat, err := app.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	if flat.Function("xform/rows") == nil || flat.Function("xform/cols") == nil {
		t.Fatalf("flatten lost inner stages: %v", flat.Functions)
	}
	if err := funclib.ValidateApp(flat); err != nil {
		t.Fatal(err)
	}
	mapping, err := model.SpreadParallel(flat, nodes)
	if err != nil {
		t.Fatal(err)
	}
	out, err := gluegen.Generate(gluegen.Input{App: flat, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sagert.Run(out.Tables, platforms.CSPI(), sagert.Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// The shelf 2D FFT stage must compute a real 2D FFT.
	want := isspl.NewMatrix(n, n)
	b := &funclib.Block{Region: model.Region{Rows: n, Cols: n}, Data: want.Data}
	funclib.FillSource(b, 13, 0)
	if err := isspl.FFT2D(want.Data, n); err != nil {
		t.Fatal(err)
	}
	if d := res.Output.MaxDiff(want); d > 1e-6 {
		t.Fatalf("shelf 2D FFT deviates by %g", d)
	}
}

func TestDetectChainComposite(t *testing.T) {
	const n, threads, nodes = 32, 2, 2
	s := Builtin()
	app := model.NewApp("detapp")
	mt, err := app.AddType(&model.DataType{Name: "cpx32x32", Rows: n, Cols: n, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 14}})
	src.AddOutput("out", mt, model.ByRows)
	if _, err := s.Instantiate(app, "detect-chain", "chain", Params{"n": n, "threads": threads, "window": "hamming"}); err != nil {
		t.Fatal(err)
	}
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.ByRows)
	if _, err := app.Connect("src", "out", "chain", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Connect("chain", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	flat, err := app.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	mapping, _ := model.SpreadParallel(flat, nodes)
	out, err := gluegen.Generate(gluegen.Input{App: flat, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sagert.Run(out.Tables, platforms.CSPI(), sagert.Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Detection output: real, non-negative power values.
	for i, v := range res.Output.Data[:64] {
		if imag(v) != 0 || real(v) < 0 {
			t.Fatalf("sample %d = %v not a power value", i, v)
		}
	}
}

func TestCornerTurnStageComposite(t *testing.T) {
	const n, threads, nodes = 32, 4, 4
	s := Builtin()
	app := model.NewApp("ctapp")
	mt, err := app.AddType(&model.DataType{Name: "cpx32x32", Rows: n, Cols: n, Elem: model.ElemComplex})
	if err != nil {
		t.Fatal(err)
	}
	src := app.AddFunction(&model.Function{Name: "src", Kind: "source_matrix", Threads: 1,
		Params: map[string]any{"seed": 15}})
	src.AddOutput("out", mt, model.ByRows)
	if _, err := s.Instantiate(app, "corner-turn-stage", "ct", Params{"n": n, "threads": threads}); err != nil {
		t.Fatal(err)
	}
	snk := app.AddFunction(&model.Function{Name: "snk", Kind: "sink_matrix", Threads: 1})
	snk.AddInput("in", mt, model.ByRows)
	if _, err := app.Connect("src", "out", "ct", "in"); err != nil {
		t.Fatal(err)
	}
	if _, err := app.Connect("ct", "out", "snk", "in"); err != nil {
		t.Fatal(err)
	}
	flat, err := app.Flatten()
	if err != nil {
		t.Fatal(err)
	}
	mapping, _ := model.SpreadParallel(flat, nodes)
	out, err := gluegen.Generate(gluegen.Input{App: flat, Mapping: mapping, Platform: platforms.CSPI(), NumNodes: nodes})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sagert.Run(out.Tables, platforms.CSPI(), sagert.Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	want := isspl.NewMatrix(n, n)
	b := &funclib.Block{Region: model.Region{Rows: n, Cols: n}, Data: want.Data}
	funclib.FillSource(b, 15, 0)
	wantT := want.Transposed()
	if d := res.Output.MaxDiff(wantT); d != 0 {
		t.Fatalf("shelf corner turn deviates by %g", d)
	}
}

func TestInstantiateUnknown(t *testing.T) {
	s := Builtin()
	app := model.NewApp("x")
	if _, err := s.Instantiate(app, "warp-stage", "w", nil); err == nil {
		t.Fatal("unknown entry accepted")
	}
	if !strings.Contains(s.Names()[0], "corner") {
		t.Fatal("names order")
	}
}
