// Package shelf implements the SAGE Designer's reuse shelves (§1.1: "All
// primitive and hierarchical blocks are stored on software and hardware
// shelves for later reuse"). A shelf catalogues parameterised builders of
// hierarchical (composite) blocks; instantiating an entry produces a
// model.Function with a Body subgraph that App.Flatten later expands into
// leaf functions. The built-in shelf carries the reusable stages the
// benchmark and example applications are assembled from.
package shelf

import (
	"fmt"
	"sort"

	"repro/internal/model"
)

// Params are the instantiation arguments of a shelf entry.
type Params map[string]any

// Int fetches an integer parameter with a default.
func (p Params) Int(key string, def int) int {
	if v, ok := p[key].(int); ok {
		return v
	}
	return def
}

// String fetches a string parameter with a default.
func (p Params) String(key, def string) string {
	if v, ok := p[key].(string); ok {
		return v
	}
	return def
}

// Builder constructs a composite block instance. name is the instance name;
// the builder registers any data types it needs on app.
type Builder func(app *model.App, name string, p Params) (*model.Function, error)

// Entry is a catalogued shelf item.
type Entry struct {
	Name    string
	Doc     string
	Builder Builder
}

// Shelf is a catalogue of reusable hierarchical blocks.
type Shelf struct {
	entries map[string]Entry
}

// New creates an empty shelf.
func New() *Shelf { return &Shelf{entries: map[string]Entry{}} }

// Register adds an entry, failing on duplicates.
func (s *Shelf) Register(e Entry) error {
	if e.Name == "" || e.Builder == nil {
		return fmt.Errorf("shelf: entry needs a name and a builder")
	}
	if _, dup := s.entries[e.Name]; dup {
		return fmt.Errorf("shelf: duplicate entry %q", e.Name)
	}
	s.entries[e.Name] = e
	return nil
}

// Names lists the catalogued entries in sorted order.
func (s *Shelf) Names() []string {
	out := make([]string, 0, len(s.entries))
	for n := range s.entries {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Doc returns an entry's documentation string.
func (s *Shelf) Doc(name string) (string, error) {
	e, ok := s.entries[name]
	if !ok {
		return "", fmt.Errorf("shelf: unknown entry %q", name)
	}
	return e.Doc, nil
}

// Instantiate builds entry name as a composite function called instanceName
// and adds it to app.
func (s *Shelf) Instantiate(app *model.App, name, instanceName string, p Params) (*model.Function, error) {
	e, ok := s.entries[name]
	if !ok {
		return nil, fmt.Errorf("shelf: unknown entry %q (have %v)", name, s.Names())
	}
	f, err := e.Builder(app, instanceName, p)
	if err != nil {
		return nil, fmt.Errorf("shelf: instantiating %q: %w", name, err)
	}
	app.AddFunction(f)
	return f, nil
}

// ensureType registers a square complex matrix type named for its edge,
// reusing an existing registration.
func ensureType(app *model.App, n int) (*model.DataType, error) {
	name := fmt.Sprintf("cpx%dx%d", n, n)
	if t, ok := app.Types[name]; ok {
		return t, nil
	}
	return app.AddType(&model.DataType{Name: name, Rows: n, Cols: n, Elem: model.ElemComplex})
}

// Builtin returns the stock shelf: the reusable stages of the paper's
// domain.
func Builtin() *Shelf {
	s := New()
	must := func(e Entry) {
		if err := s.Register(e); err != nil {
			panic(err)
		}
	}

	must(Entry{
		Name: "fft2d-stage",
		Doc:  "Composite 2D FFT: row FFTs followed by column FFTs (the inner arc is the corner turn). Params: n, threads.",
		Builder: func(app *model.App, name string, p Params) (*model.Function, error) {
			n := p.Int("n", 256)
			threads := p.Int("threads", 4)
			mt, err := ensureType(app, n)
			if err != nil {
				return nil, err
			}
			rows := &model.Function{Name: "rows", Kind: "fft_rows", Threads: threads}
			rin := rows.AddInput("in", mt, model.ByRows)
			rout := rows.AddOutput("out", mt, model.ByRows)
			cols := &model.Function{Name: "cols", Kind: "fft_cols", Threads: threads}
			cin := cols.AddInput("in", mt, model.ByCols)
			cout := cols.AddOutput("out", mt, model.ByCols)

			comp := &model.Function{Name: name, Threads: 1}
			bin := comp.AddInput("in", mt, model.ByRows)
			bout := comp.AddOutput("out", mt, model.ByCols)
			comp.Body = &model.Subgraph{
				Functions: []*model.Function{rows, cols},
				Arcs:      []*model.Arc{{From: rout, To: cin}},
				Bind:      map[*model.Port]*model.Port{bin: rin, bout: cout},
			}
			return comp, nil
		},
	})

	must(Entry{
		Name: "detect-chain",
		Doc:  "Composite detection chain: window rows, row FFT, power detect. Params: n, threads, window.",
		Builder: func(app *model.App, name string, p Params) (*model.Function, error) {
			n := p.Int("n", 256)
			threads := p.Int("threads", 4)
			window := p.String("window", "hann")
			mt, err := ensureType(app, n)
			if err != nil {
				return nil, err
			}
			win := &model.Function{Name: "win", Kind: "window_rows", Threads: threads,
				Params: map[string]any{"window": window}}
			win.AddInput("in", mt, model.ByRows)
			winOut := win.AddOutput("out", mt, model.ByRows)
			fft := &model.Function{Name: "fft", Kind: "fft_rows", Threads: threads}
			fftIn := fft.AddInput("in", mt, model.ByRows)
			fftOut := fft.AddOutput("out", mt, model.ByRows)
			det := &model.Function{Name: "det", Kind: "mag2", Threads: threads}
			detIn := det.AddInput("in", mt, model.ByRows)
			detOut := det.AddOutput("out", mt, model.ByRows)

			comp := &model.Function{Name: name, Threads: 1}
			bin := comp.AddInput("in", mt, model.ByRows)
			bout := comp.AddOutput("out", mt, model.ByRows)
			comp.Body = &model.Subgraph{
				Functions: []*model.Function{win, fft, det},
				Arcs: []*model.Arc{
					{From: winOut, To: fftIn},
					{From: fftOut, To: detIn},
				},
				Bind: map[*model.Port]*model.Port{bin: win.Inputs[0], bout: detOut},
			}
			return comp, nil
		},
	})

	must(Entry{
		Name: "corner-turn-stage",
		Doc:  "Composite distributed corner turn: identity ingest, redistribution arc, local transpose. Params: n, threads.",
		Builder: func(app *model.App, name string, p Params) (*model.Function, error) {
			n := p.Int("n", 256)
			threads := p.Int("threads", 4)
			mt, err := ensureType(app, n)
			if err != nil {
				return nil, err
			}
			ing := &model.Function{Name: "ingest", Kind: "identity", Threads: threads}
			iin := ing.AddInput("in", mt, model.ByRows)
			iout := ing.AddOutput("out", mt, model.ByRows)
			turn := &model.Function{Name: "turn", Kind: "transpose_block", Threads: threads}
			tin := turn.AddInput("in", mt, model.ByCols)
			tout := turn.AddOutput("out", mt, model.ByRows)

			comp := &model.Function{Name: name, Threads: 1}
			bin := comp.AddInput("in", mt, model.ByRows)
			bout := comp.AddOutput("out", mt, model.ByRows)
			comp.Body = &model.Subgraph{
				Functions: []*model.Function{ing, turn},
				Arcs:      []*model.Arc{{From: iout, To: tin}},
				Bind:      map[*model.Port]*model.Port{bin: iin, bout: tout},
			}
			return comp, nil
		},
	})

	return s
}
